#ifndef DETECTIVE_CORE_EVIDENCE_MATCHER_H_
#define DETECTIVE_CORE_EVIDENCE_MATCHER_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bound_rule.h"
#include "kb/knowledge_base.h"
#include "relation/relation.h"
#include "text/signature_index.h"

namespace detective {

class CancelToken;

/// Tuning and ablation knobs for instance-level matching.
struct MatcherOptions {
  /// Use the signature-based inverted indexes of §IV-B(2) for similarity
  /// matching (off = linear scan over the instances of the node's type,
  /// which is what the basic algorithm's complexity analysis assumes).
  bool use_signature_index = true;

  /// Share node-check results across rules and tuples (§IV-B(3)): candidate
  /// sets are memoised by (type, sim, value), so a (column,type,sim) key
  /// checked for one rule is free for every other rule — the role of the
  /// paper's inverted lists of Fig. 5.
  bool use_value_memo = true;

  /// Backtracking guard: stop enumerating instance-level assignments for one
  /// rule application after this many partial assignments.
  size_t max_assignments = 100000;

  /// Cap on distinct corrections gathered from the negative semantics
  /// (multi-version repairs, §IV-C).
  size_t max_corrections = 16;
};

/// The instance-level witness behind a proof negative, surfaced so repair
/// provenance can name the evidence (core/provenance.h). Filled by
/// NegativeCorrections when requested.
struct NegativeWitness {
  /// Best-scoring witnessing assignment of the negative side, indexed by
  /// graph-node position (Invalid outside the negative side). Empty when no
  /// witness was found.
  std::vector<ItemId> assignment;
  /// For every emitted correction label, the KB instance x_p it came from
  /// (the first witnessing instance, which is deterministic: the search
  /// enumerates sorted candidate lists).
  std::map<std::string, ItemId> correction_items;
};

/// Counters for the efficiency experiments.
struct MatcherStats {
  size_t node_checks = 0;        // candidate-set computations requested
  size_t memo_hits = 0;          // served from the value memo
  size_t index_lookups = 0;      // served by a signature index
  size_t scans = 0;              // served by a linear scan
  size_t assignments_explored = 0;
};

/// Finds instance-level matching graphs (paper §II-B) for bound rules: the
/// assignment of KB instances to rule nodes such that every node's value
/// constraint and every edge's relationship constraint hold.
///
/// Owns the per-(type, similarity) signature indexes and the cross-rule
/// value memo. Not thread-safe (one matcher per repair thread).
class EvidenceMatcher {
 public:
  explicit EvidenceMatcher(const KnowledgeBase& kb, MatcherOptions options = {});

  /// KB items x with IsInstanceOf(x, type) and sim(value, label(x)).
  std::vector<ItemId> NodeCandidates(ClassId type, const Similarity& sim,
                                     std::string_view value);

  /// Proof positive: does an instance-level match of the positive side
  /// (evidence ∪ {p}) exist for `tuple`?
  bool HasPositiveMatch(const BoundRule& rule, const Tuple& tuple);

  /// Like HasPositiveMatch, but returns the positive-side assignment that
  /// maximizes the summed similarity between cell values and matched
  /// instance labels (ties broken toward lexicographically smaller labels,
  /// for determinism). The best assignment is what value normalization uses:
  /// a cell that matched an instance only fuzzily (e.g. "Paster Institute" ≈
  /// "Pasteur Institute" under ED,2) is standardized to the instance label —
  /// the paper's correction of typos through the positive semantics.
  bool BestPositiveMatch(const BoundRule& rule, const Tuple& tuple,
                         std::vector<ItemId>* best);

  /// Proof negative + correction: enumerates instance-level matches of the
  /// negative side (evidence ∪ {n}); for each, derives the instances x_p
  /// that satisfy the positive side's constraints on p with the same
  /// evidence assignment and x_p != x_n. Returns the distinct labels of all
  /// such x_p that differ from the current cell value — the candidate
  /// corrections, sorted.
  ///
  /// When `evidence_normalizations` is non-null it receives, for the
  /// best-scoring witnessing assignment, the evidence cells whose matched
  /// instance label differs from the cell value (fuzzy matches). Those cells
  /// are about to be marked positive, so the repairer standardizes them to
  /// the proven label — otherwise whether a typo gets fixed would depend on
  /// which rule reaches the cell first, breaking Church–Rosser.
  ///
  /// When `witness` is non-null it receives the best witnessing assignment
  /// and the KB instance behind each correction (for provenance capture).
  std::vector<std::string> NegativeCorrections(
      const BoundRule& rule, const Tuple& tuple,
      std::vector<std::pair<ColumnIndex, std::string>>* evidence_normalizations =
          nullptr,
      NegativeWitness* witness = nullptr);

  /// Generic instance-level matching over an arbitrary bound graph: searches
  /// for one assignment of KB items to the nodes in `subset` such that all
  /// node constraints and all edges whose endpoints are both in `subset`
  /// hold. On success fills `assignment` (indexed by graph-node position;
  /// nodes outside `subset` stay Invalid). Used by detective rules and by
  /// the KATARA baseline's table patterns.
  bool FindAssignment(const std::vector<BoundNode>& nodes,
                      const std::vector<BoundEdge>& edges,
                      const std::vector<uint32_t>& subset, const Tuple& tuple,
                      std::vector<ItemId>* assignment);

  /// KB items that satisfy every edge incident to `node` whose other
  /// endpoint is assigned, filtered by the node's type — the candidate
  /// values the KB offers for that node given the surrounding assignment.
  std::vector<ItemId> TargetsFor(const std::vector<BoundNode>& nodes,
                                 const std::vector<BoundEdge>& edges, uint32_t node,
                                 const std::vector<ItemId>& assignment);

  const MatcherStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MatcherStats(); }

  /// Installs a cooperative cancellation token (common/deadline.h): the
  /// assignment search polls it and aborts when it trips, and the fault
  /// probe at "kb.lookup" trips it. nullptr (the default) disables both —
  /// the unguarded fast path. The token must outlive the installation.
  void set_cancel(CancelToken* token) { cancel_ = token; }
  CancelToken* cancel() const { return cancel_; }

  /// Drops the value memo (for the ablation benchmarks).
  void ClearMemo();

  const KnowledgeBase& kb() const { return kb_; }
  const MatcherOptions& options() const { return options_; }

 private:
  /// Backtracking search over `node_indexes`; invokes `on_match` with the
  /// assignment (ItemId per graph-node index) for every full match.
  /// `on_match` returns false to stop the search. Returns false if the
  /// assignment budget was exhausted before the search space was covered.
  template <typename OnMatch>
  bool Search(const std::vector<BoundNode>& nodes,
              const std::vector<BoundEdge>& edges,
              const std::vector<uint32_t>& node_indexes, const Tuple& tuple,
              OnMatch&& on_match);

  std::string MemoKey(ClassId type, const Similarity& sim,
                      std::string_view value) const;

  const SignatureIndex& IndexFor(ClassId type, const Similarity& sim);

  const KnowledgeBase& kb_;
  MatcherOptions options_;
  MatcherStats stats_;
  CancelToken* cancel_ = nullptr;

  std::unordered_map<std::string, std::vector<ItemId>> memo_;
  // Key: type id | sim signature.
  std::unordered_map<std::string, std::unique_ptr<SignatureIndex>> indexes_;
};

}  // namespace detective

#endif  // DETECTIVE_CORE_EVIDENCE_MATCHER_H_
