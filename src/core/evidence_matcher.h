#ifndef DETECTIVE_CORE_EVIDENCE_MATCHER_H_
#define DETECTIVE_CORE_EVIDENCE_MATCHER_H_

#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/sharded_cache.h"
#include "core/bound_rule.h"
#include "kb/knowledge_base.h"
#include "relation/relation.h"
#include "text/signature_index.h"

namespace detective {

class CancelToken;
class MatchPlan;

/// Cross-worker candidate memo: packed (type, sim, value) key → the sorted
/// candidate ItemIds (§IV-B(3) value memo, shared across repair threads).
/// Entry pointers stay valid for the cache's lifetime, so matchers hand out
/// spans into it without copying.
using SharedCandidateCache = ShardedCache<std::vector<ItemId>>;

/// Tuning and ablation knobs for instance-level matching.
struct MatcherOptions {
  /// Use the signature-based inverted indexes of §IV-B(2) for similarity
  /// matching (off = linear scan over the instances of the node's type,
  /// which is what the basic algorithm's complexity analysis assumes).
  bool use_signature_index = true;

  /// Share node-check results across rules and tuples (§IV-B(3)): candidate
  /// sets are memoised by (type, sim, value), so a (column,type,sim) key
  /// checked for one rule is free for every other rule — the role of the
  /// paper's inverted lists of Fig. 5.
  bool use_value_memo = true;

  /// Backtracking guard: stop enumerating instance-level assignments for one
  /// rule application after this many partial assignments.
  size_t max_assignments = 100000;

  /// Cap on distinct corrections gathered from the negative semantics
  /// (multi-version repairs, §IV-C).
  size_t max_corrections = 16;
};

/// The instance-level witness behind a proof negative, surfaced so repair
/// provenance can name the evidence (core/provenance.h). Filled by
/// NegativeCorrections when requested.
struct NegativeWitness {
  /// Best-scoring witnessing assignment of the negative side, indexed by
  /// graph-node position (Invalid outside the negative side). Empty when no
  /// witness was found.
  std::vector<ItemId> assignment;
  /// For every emitted correction label, the KB instance x_p it came from
  /// (the first witnessing instance, which is deterministic: the search
  /// enumerates sorted candidate lists).
  std::map<std::string, ItemId> correction_items;
};

/// Counters for the efficiency experiments.
struct MatcherStats {
  size_t node_checks = 0;        // candidate-set computations requested
  size_t memo_hits = 0;          // served from the private value memo
  size_t shared_hits = 0;        // served from the shared candidate cache
  size_t shared_misses = 0;      // shared-cache lookups that had to compute
  size_t index_lookups = 0;      // served by a signature index
  size_t scans = 0;              // served by a linear scan
  size_t assignments_explored = 0;
};

/// Finds instance-level matching graphs (paper §II-B) for bound rules: the
/// assignment of KB instances to rule nodes such that every node's value
/// constraint and every edge's relationship constraint hold.
///
/// Owns the per-(type, similarity) signature indexes and the cross-rule
/// value memo. Not thread-safe (one matcher per repair thread).
class EvidenceMatcher {
 public:
  explicit EvidenceMatcher(const KnowledgeBase& kb, MatcherOptions options = {});

  /// KB items x with IsInstanceOf(x, type) and sim(value, label(x)).
  std::vector<ItemId> NodeCandidates(ClassId type, const Similarity& sim,
                                     std::string_view value);

  /// Zero-copy variant of NodeCandidates for the search hot path: returns a
  /// span over the memoised candidate set (private memo or shared cache), or
  /// over `*storage` after computing into it when nothing memoises the
  /// result. The span stays valid until ClearMemo() — memo entries are never
  /// evicted, shared-cache entries never move — or, for the storage case,
  /// until `*storage` is next modified.
  std::span<const ItemId> NodeCandidatesRef(ClassId type, const Similarity& sim,
                                            std::string_view value,
                                            std::vector<ItemId>* storage);

  /// Installs the shared read-only match plan and/or cross-worker candidate
  /// cache (core/match_plan.h, common/sharded_cache.h). Either may be null;
  /// both must outlive the matcher's use of them. Sharing never changes
  /// results — only where the indexes and memo entries live.
  void SetShared(const MatchPlan* plan, SharedCandidateCache* cache) {
    plan_ = plan;
    shared_cache_ = cache;
  }

  /// Proof positive: does an instance-level match of the positive side
  /// (evidence ∪ {p}) exist for `tuple`?
  bool HasPositiveMatch(const BoundRule& rule, const Tuple& tuple);

  /// Like HasPositiveMatch, but returns the positive-side assignment that
  /// maximizes the summed similarity between cell values and matched
  /// instance labels (ties broken toward lexicographically smaller labels,
  /// for determinism). The best assignment is what value normalization uses:
  /// a cell that matched an instance only fuzzily (e.g. "Paster Institute" ≈
  /// "Pasteur Institute" under ED,2) is standardized to the instance label —
  /// the paper's correction of typos through the positive semantics.
  bool BestPositiveMatch(const BoundRule& rule, const Tuple& tuple,
                         std::vector<ItemId>* best);

  /// Proof negative + correction: enumerates instance-level matches of the
  /// negative side (evidence ∪ {n}); for each, derives the instances x_p
  /// that satisfy the positive side's constraints on p with the same
  /// evidence assignment and x_p != x_n. Returns the distinct labels of all
  /// such x_p that differ from the current cell value — the candidate
  /// corrections, sorted.
  ///
  /// When `evidence_normalizations` is non-null it receives, for the
  /// best-scoring witnessing assignment, the evidence cells whose matched
  /// instance label differs from the cell value (fuzzy matches). Those cells
  /// are about to be marked positive, so the repairer standardizes them to
  /// the proven label — otherwise whether a typo gets fixed would depend on
  /// which rule reaches the cell first, breaking Church–Rosser.
  ///
  /// When `witness` is non-null it receives the best witnessing assignment
  /// and the KB instance behind each correction (for provenance capture).
  std::vector<std::string> NegativeCorrections(
      const BoundRule& rule, const Tuple& tuple,
      std::vector<std::pair<ColumnIndex, std::string>>* evidence_normalizations =
          nullptr,
      NegativeWitness* witness = nullptr);

  /// Generic instance-level matching over an arbitrary bound graph: searches
  /// for one assignment of KB items to the nodes in `subset` such that all
  /// node constraints and all edges whose endpoints are both in `subset`
  /// hold. On success fills `assignment` (indexed by graph-node position;
  /// nodes outside `subset` stay Invalid). Used by detective rules and by
  /// the KATARA baseline's table patterns.
  bool FindAssignment(const std::vector<BoundNode>& nodes,
                      const std::vector<BoundEdge>& edges,
                      const std::vector<uint32_t>& subset, const Tuple& tuple,
                      std::vector<ItemId>* assignment);

  /// KB items that satisfy every edge incident to `node` whose other
  /// endpoint is assigned, filtered by the node's type — the candidate
  /// values the KB offers for that node given the surrounding assignment.
  std::vector<ItemId> TargetsFor(const std::vector<BoundNode>& nodes,
                                 const std::vector<BoundEdge>& edges, uint32_t node,
                                 const std::vector<ItemId>& assignment);

  const MatcherStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MatcherStats(); }

  /// Installs a cooperative cancellation token (common/deadline.h): the
  /// assignment search polls it and aborts when it trips, and the fault
  /// probe at "kb.lookup" trips it. nullptr (the default) disables both —
  /// the unguarded fast path. The token must outlive the installation.
  void set_cancel(CancelToken* token) { cancel_ = token; }
  CancelToken* cancel() const { return cancel_; }

  /// Drops the value memo (for the ablation benchmarks).
  void ClearMemo();

  const KnowledgeBase& kb() const { return kb_; }
  const MatcherOptions& options() const { return options_; }

 private:
  /// Backtracking search over `node_indexes`; invokes `on_match` with the
  /// assignment (ItemId per graph-node index) for every full match.
  /// `on_match` returns false to stop the search. Returns false if the
  /// assignment budget was exhausted before the search space was covered.
  template <typename OnMatch>
  bool Search(const std::vector<BoundNode>& nodes,
              const std::vector<BoundEdge>& edges,
              const std::vector<uint32_t>& node_indexes, const Tuple& tuple,
              OnMatch&& on_match);

  /// Packs (type, sim, value) into `key_scratch_` as a fixed binary header
  /// plus the value bytes; the returned view is invalidated by the next call.
  std::string_view MemoKey(ClassId type, const Similarity& sim,
                           std::string_view value);

  /// Computes the candidate set into `*out` (sorted, deduplicated) — the
  /// uncached fallback behind both memo layers.
  void ComputeCandidates(ClassId type, const Similarity& sim,
                         std::string_view value, std::vector<ItemId>* out);

  const SignatureIndex& IndexFor(ClassId type, const Similarity& sim);

  const KnowledgeBase& kb_;
  MatcherOptions options_;
  MatcherStats stats_;
  CancelToken* cancel_ = nullptr;

  // Shared, frozen state owned by the parallel driver (never owned here).
  const MatchPlan* plan_ = nullptr;
  SharedCandidateCache* shared_cache_ = nullptr;

  // Private value memo (and, when the shared cache rejects an insert at
  // capacity, its per-worker overflow store).
  std::unordered_map<std::string, std::vector<ItemId>, StringViewHash,
                     std::equal_to<>>
      memo_;
  // Key: type id | sim signature.
  std::unordered_map<std::string, std::unique_ptr<SignatureIndex>> indexes_;
  std::string key_scratch_;         // MemoKey assembly buffer
  std::vector<uint32_t> u32_scratch_;  // signature-index lookup buffer
};

}  // namespace detective

#endif  // DETECTIVE_CORE_EVIDENCE_MATCHER_H_
