#include "core/parallel_repair.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/match_plan.h"
#include "obs/progress.h"

namespace detective {

namespace {

void AccumulateStats(const RepairStats& part, RepairStats* total) {
  total->tuples_processed += part.tuples_processed;
  total->rule_checks += part.rule_checks;
  total->rule_applications += part.rule_applications;
  total->proofs_positive += part.proofs_positive;
  total->repairs += part.repairs;
  total->cells_marked += part.cells_marked;
  total->tuples_quarantined += part.tuples_quarantined;
  total->chunks_stolen += part.chunks_stolen;
  total->rounds_skipped += part.rounds_skipped;
}

}  // namespace

Result<RepairStats> ParallelRepair(const KnowledgeBase& kb,
                                   const std::vector<DetectiveRule>& rules,
                                   Relation* relation,
                                   ParallelRepairOptions options) {
  DETECTIVE_SCOPED_TIMER("parallel.repair");
  const std::vector<size_t>* subset = options.row_subset;
  if (subset != nullptr) {
    if (options.repair.max_rule_failures > 0) {
      return Status::InvalidArgument(
          "row_subset cannot combine with max_rule_failures: the breaker "
          "tallies failures across the whole relation, not a subset");
    }
    for (size_t row : *subset) {
      if (row >= relation->num_tuples()) {
        return Status::InvalidArgument("row_subset names row ", row,
                                       " but the relation has only ",
                                       relation->num_tuples(), " row(s)");
      }
    }
  }
  // `rows` counts units of work; with a subset, position i maps to original
  // row row_at(i) — the index that keys fault scopes and log records.
  const size_t rows =
      subset != nullptr ? subset->size() : relation->num_tuples();
  auto row_at = [subset](size_t i) {
    return subset != nullptr ? (*subset)[i] : i;
  };
  DETECTIVE_TRACE_SPAN("parallel.repair", {"rows", static_cast<int64_t>(rows)});
  size_t threads = options.num_threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<size_t>(1, rows));

  // Validate the binding once up front so workers cannot fail, and build the
  // shared frozen plan from the bound rules: the §IV-B(2) indexes are
  // constructed exactly once here (in parallel, one index per build task)
  // instead of once per worker.
  MatchPlan plan;
  const MatchPlan* plan_ptr = nullptr;
  {
    RuleEngine probe(kb, relation->schema(), rules, options.repair);
    RETURN_NOT_OK(probe.Init());
    if (options.share_match_plan && options.repair.matcher.use_signature_index) {
      plan = MatchPlan::Build(kb, probe.bound_rules(), threads);
      plan_ptr = &plan;
    }
  }
  SharedCandidateCache cache(options.cache_capacity);
  SharedCandidateCache* cache_ptr =
      options.share_value_cache && options.repair.matcher.use_value_memo
          ? &cache
          : nullptr;

  const bool guarded = options.quarantine != nullptr ||
                       GuardedRepairRequested(options.repair);
  if (threads == 1 || rows == 0) {
    FastRepairer repairer(kb, relation->schema(), rules, options.repair);
    RETURN_NOT_OK(repairer.Init());
    repairer.engine().set_provenance(options.provenance);
    repairer.engine().SetShared(plan_ptr, cache_ptr);
    if (subset == nullptr) {
      if (guarded) {
        repairer.RepairRelationGuarded(relation, options.quarantine);
      } else {
        repairer.RepairRelation(relation);
      }
      return repairer.stats();
    }
    // Sequential subset drive, mirroring RepairRelation(Guarded) with
    // original row indexes. No BreakerFixpoint: subset + breaker was
    // rejected above.
    if (guarded) {
      const uint64_t seq_deadline_ms = options.repair.deadline_ms;
      const Deadline seq_deadline = seq_deadline_ms > 0
                                        ? Deadline::AfterMs(seq_deadline_ms)
                                        : Deadline::Infinite();
      QuarantineLog ledger;
      for (size_t i = 0; i < rows; ++i) {
        const size_t row = row_at(i);
        Tuple tuple = relation->tuple(row);
        if (repairer.RepairTupleGuarded(row, seq_deadline, &tuple, &ledger)) {
          relation->CommitRow(row, tuple);
        }
        DETECTIVE_PROGRESS(AddRowsCommitted(1));
      }
      ledger.Canonicalize();
      if (options.quarantine != nullptr) {
        options.quarantine->Merge(std::move(ledger));
      }
    } else {
      for (size_t i = 0; i < rows; ++i) {
        const size_t row = row_at(i);
        repairer.engine().set_current_row(row);
        Tuple tuple = relation->tuple(row);
        repairer.RepairTuple(&tuple);
        relation->CommitRow(row, tuple);
        DETECTIVE_PROGRESS(AddRowsCommitted(1));
      }
    }
    return repairer.stats();
  }

  const size_t chunk_rows = std::max<size_t>(1, options.chunk_rows);
  const size_t num_chunks = (rows + chunk_rows - 1) / chunk_rows;
  // The run deadline is armed once, before the fan-out, so every worker —
  // and the breaker's sequential re-chase below — measures the same run.
  const uint64_t deadline_ms = options.repair.deadline_ms;
  const Deadline run_deadline =
      deadline_ms > 0 ? Deadline::AfterMs(deadline_ms) : Deadline::Infinite();
  DETECTIVE_COUNT_N("parallel.workers_launched", threads);
  DETECTIVE_COUNT_N("parallel.chunks", num_chunks);

  // Chunk-indexed provenance/quarantine shards: whichever worker repairs a
  // chunk records into that chunk's slot, so merging in chunk index order
  // reproduces the sequential ascending-row record order no matter how the
  // chunks were claimed.
  std::vector<RepairStats> stats(threads);
  std::vector<ProvenanceLog> chunk_logs(
      options.provenance != nullptr ? num_chunks : 0);
  std::vector<QuarantineLog> chunk_quarantines(guarded ? num_chunks : 0);
  // Chunk-indexed result buffers: workers chase detached row copies
  // (Relation::tuple checkouts) and park them here, leaving the shared
  // columnar relation read-only for the whole fan-out. The main thread
  // commits the buffers in ascending chunk — hence row — order after the
  // join, so column-arena writes are sequential and the committed bytes are
  // identical at every thread count.
  std::vector<std::vector<Tuple>> chunk_results(num_chunks);
  std::atomic<size_t> next_chunk{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      // Workers record into their own thread-local metric shards; the global
      // snapshot merges them, so instrumented totals match a sequential run.
      DETECTIVE_SCOPED_TIMER("parallel.worker");
      DETECTIVE_TRACE_SPAN("parallel.worker",
                           {"thread", static_cast<int64_t>(t)});
      FastRepairer repairer(kb, relation->schema(), rules, options.repair);
      // Binding was validated above; a failure here would be a logic error.
      repairer.Init().Abort("ParallelRepair worker");
      repairer.engine().SetShared(plan_ptr, cache_ptr);
      while (true) {
        const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= num_chunks) break;
        // "Stolen" = claimed by a different worker than the one a static
        // contiguous sharding would assign this chunk to.
        if (chunk * threads / num_chunks != t) {
          ++repairer.engine().stats().chunks_stolen;
          DETECTIVE_COUNT("steal.count");
          DETECTIVE_PROGRESS(AddSteals(1));
        }
        if (options.provenance != nullptr) {
          repairer.engine().set_provenance(&chunk_logs[chunk]);
        }
        const size_t lo = chunk * chunk_rows;
        const size_t hi = std::min(rows, lo + chunk_rows);
        std::vector<Tuple>& results = chunk_results[chunk];
        results.reserve(hi - lo);
        for (size_t i = lo; i < hi; ++i) {
          const size_t row = row_at(i);
          Tuple tuple = relation->tuple(row);
          if (guarded) {
            // A tripped chase rolls the tuple back to its checkout state, so
            // committing it below is a no-op for that row.
            repairer.RepairTupleGuarded(row, run_deadline, &tuple,
                                        &chunk_quarantines[chunk]);
          } else {
            repairer.engine().set_current_row(row);
            repairer.RepairTuple(&tuple);
          }
          results.push_back(std::move(tuple));
          // Chased-but-not-yet-committed rows drive the heartbeat: workers
          // finish rows long before the ordered commit below runs.
          DETECTIVE_PROGRESS(AddRowsCommitted(1));
        }
      }
      stats[t] = repairer.stats();
    });
  }
  for (std::thread& worker : workers) worker.join();

  // Ordered commit of the chased rows (see chunk_results above).
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const size_t lo = chunk * chunk_rows;
    std::vector<Tuple>& results = chunk_results[chunk];
    for (size_t i = 0; i < results.size(); ++i) {
      relation->CommitRow(row_at(lo + i), results[i]);
    }
    results = {};  // release the buffer eagerly
  }

  if (options.provenance != nullptr) {
    for (ProvenanceLog& log : chunk_logs) options.provenance->Merge(std::move(log));
  }

  RepairStats merged;
  for (const RepairStats& part : stats) AccumulateStats(part, &merged);

  if (guarded) {
    QuarantineLog ledger;
    for (QuarantineLog& log : chunk_quarantines) ledger.Merge(std::move(log));
    if (options.repair.max_rule_failures > 0 && !ledger.empty()) {
      // The breaker fixpoint runs sequentially on a fresh repairer: retries
      // are few, and per-tuple fault decisions are row-keyed (TupleScope),
      // so the outcome matches the sequential driver's bit for bit.
      FastRepairer retrier(kb, relation->schema(), rules, options.repair);
      RETURN_NOT_OK(retrier.Init());
      retrier.engine().set_provenance(options.provenance);
      retrier.engine().SetShared(plan_ptr, cache_ptr);
      BreakerFixpoint(retrier, relation, run_deadline, &ledger);
      AccumulateStats(retrier.stats(), &merged);
    }
    ledger.Canonicalize();
    if (options.quarantine != nullptr) {
      options.quarantine->Merge(std::move(ledger));
    }
  }
  return merged;
}

}  // namespace detective
