#include "core/parallel_repair.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace detective {

Result<RepairStats> ParallelRepair(const KnowledgeBase& kb,
                                   const std::vector<DetectiveRule>& rules,
                                   Relation* relation,
                                   ParallelRepairOptions options) {
  DETECTIVE_SCOPED_TIMER("parallel.repair");
  DETECTIVE_TRACE_SPAN("parallel.repair",
                       {"rows", static_cast<int64_t>(relation->num_tuples())});
  size_t threads = options.num_threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<size_t>(1, relation->num_tuples()));

  // Validate the binding once up front so workers cannot fail.
  {
    RuleEngine probe(kb, relation->schema(), rules, options.repair);
    RETURN_NOT_OK(probe.Init());
  }
  const bool guarded = options.quarantine != nullptr ||
                       GuardedRepairRequested(options.repair);
  if (threads == 1 || relation->num_tuples() == 0) {
    FastRepairer repairer(kb, relation->schema(), rules, options.repair);
    RETURN_NOT_OK(repairer.Init());
    repairer.engine().set_provenance(options.provenance);
    if (guarded) {
      repairer.RepairRelationGuarded(relation, options.quarantine);
    } else {
      repairer.RepairRelation(relation);
    }
    return repairer.stats();
  }

  const size_t rows = relation->num_tuples();
  // The run deadline is armed once, before the fan-out, so every worker —
  // and the breaker's sequential re-chase below — measures the same run.
  const uint64_t deadline_ms = options.repair.deadline_ms;
  const Deadline run_deadline =
      deadline_ms > 0 ? Deadline::AfterMs(deadline_ms) : Deadline::Infinite();
  DETECTIVE_COUNT_N("parallel.workers_launched", threads);
  std::vector<RepairStats> stats(threads);
  std::vector<ProvenanceLog> logs(threads);
  std::vector<QuarantineLog> quarantines(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    size_t lo = rows * t / threads;
    size_t hi = rows * (t + 1) / threads;
    workers.emplace_back([&, t, lo, hi] {
      // Workers record into their own thread-local metric shards; the global
      // snapshot merges them, so instrumented totals match a sequential run.
      DETECTIVE_SCOPED_TIMER("parallel.worker");
      DETECTIVE_TRACE_SPAN("parallel.worker",
                           {"rows", static_cast<int64_t>(hi - lo)});
      FastRepairer repairer(kb, relation->schema(), rules, options.repair);
      // Binding was validated above; a failure here would be a logic error.
      repairer.Init().Abort("ParallelRepair worker");
      if (options.provenance != nullptr) {
        repairer.engine().set_provenance(&logs[t]);
      }
      for (size_t row = lo; row < hi; ++row) {
        if (guarded) {
          repairer.RepairTupleGuarded(row, run_deadline,
                                      &relation->mutable_tuple(row),
                                      &quarantines[t]);
        } else {
          repairer.engine().set_current_row(row);
          repairer.RepairTuple(&relation->mutable_tuple(row));
        }
      }
      stats[t] = repairer.stats();
    });
  }
  for (std::thread& worker : workers) worker.join();

  if (options.provenance != nullptr) {
    // Worker t owns the contiguous row range [lo_t, hi_t), so appending in
    // worker order reproduces the sequential (ascending-row) record order.
    for (ProvenanceLog& log : logs) options.provenance->Merge(std::move(log));
  }

  RepairStats merged;
  for (const RepairStats& part : stats) {
    merged.tuples_processed += part.tuples_processed;
    merged.rule_checks += part.rule_checks;
    merged.rule_applications += part.rule_applications;
    merged.proofs_positive += part.proofs_positive;
    merged.repairs += part.repairs;
    merged.cells_marked += part.cells_marked;
    merged.tuples_quarantined += part.tuples_quarantined;
  }

  if (guarded) {
    QuarantineLog ledger;
    for (QuarantineLog& log : quarantines) ledger.Merge(std::move(log));
    if (options.repair.max_rule_failures > 0 && !ledger.empty()) {
      // The breaker fixpoint runs sequentially on a fresh repairer: retries
      // are few, and per-tuple fault decisions are row-keyed (TupleScope),
      // so the outcome matches the sequential driver's bit for bit.
      FastRepairer retrier(kb, relation->schema(), rules, options.repair);
      RETURN_NOT_OK(retrier.Init());
      retrier.engine().set_provenance(options.provenance);
      BreakerFixpoint(retrier, relation, run_deadline, &ledger);
      const RepairStats& extra = retrier.stats();
      merged.tuples_processed += extra.tuples_processed;
      merged.rule_checks += extra.rule_checks;
      merged.rule_applications += extra.rule_applications;
      merged.proofs_positive += extra.proofs_positive;
      merged.repairs += extra.repairs;
      merged.cells_marked += extra.cells_marked;
      merged.tuples_quarantined += extra.tuples_quarantined;
    }
    ledger.Canonicalize();
    if (options.quarantine != nullptr) {
      options.quarantine->Merge(std::move(ledger));
    }
  }
  return merged;
}

}  // namespace detective
