#include "core/parallel_repair.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace detective {

Result<RepairStats> ParallelRepair(const KnowledgeBase& kb,
                                   const std::vector<DetectiveRule>& rules,
                                   Relation* relation,
                                   ParallelRepairOptions options) {
  DETECTIVE_SCOPED_TIMER("parallel.repair");
  DETECTIVE_TRACE_SPAN("parallel.repair",
                       {"rows", static_cast<int64_t>(relation->num_tuples())});
  size_t threads = options.num_threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<size_t>(1, relation->num_tuples()));

  // Validate the binding once up front so workers cannot fail.
  {
    RuleEngine probe(kb, relation->schema(), rules, options.repair);
    RETURN_NOT_OK(probe.Init());
  }
  if (threads == 1 || relation->num_tuples() == 0) {
    FastRepairer repairer(kb, relation->schema(), rules, options.repair);
    RETURN_NOT_OK(repairer.Init());
    repairer.engine().set_provenance(options.provenance);
    repairer.RepairRelation(relation);
    return repairer.stats();
  }

  const size_t rows = relation->num_tuples();
  DETECTIVE_COUNT_N("parallel.workers_launched", threads);
  std::vector<RepairStats> stats(threads);
  std::vector<ProvenanceLog> logs(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    size_t lo = rows * t / threads;
    size_t hi = rows * (t + 1) / threads;
    workers.emplace_back([&, t, lo, hi] {
      // Workers record into their own thread-local metric shards; the global
      // snapshot merges them, so instrumented totals match a sequential run.
      DETECTIVE_SCOPED_TIMER("parallel.worker");
      DETECTIVE_TRACE_SPAN("parallel.worker",
                           {"rows", static_cast<int64_t>(hi - lo)});
      FastRepairer repairer(kb, relation->schema(), rules, options.repair);
      // Binding was validated above; a failure here would be a logic error.
      repairer.Init().Abort("ParallelRepair worker");
      if (options.provenance != nullptr) {
        repairer.engine().set_provenance(&logs[t]);
      }
      for (size_t row = lo; row < hi; ++row) {
        repairer.engine().set_current_row(row);
        repairer.RepairTuple(&relation->mutable_tuple(row));
      }
      stats[t] = repairer.stats();
    });
  }
  for (std::thread& worker : workers) worker.join();

  if (options.provenance != nullptr) {
    // Worker t owns the contiguous row range [lo_t, hi_t), so appending in
    // worker order reproduces the sequential (ascending-row) record order.
    for (ProvenanceLog& log : logs) options.provenance->Merge(std::move(log));
  }

  RepairStats merged;
  for (const RepairStats& part : stats) {
    merged.tuples_processed += part.tuples_processed;
    merged.rule_checks += part.rule_checks;
    merged.rule_applications += part.rule_applications;
    merged.proofs_positive += part.proofs_positive;
    merged.repairs += part.repairs;
    merged.cells_marked += part.cells_marked;
  }
  return merged;
}

}  // namespace detective
