#ifndef DETECTIVE_CORE_RULE_H_
#define DETECTIVE_CORE_RULE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/matching_graph.h"

namespace detective {

/// A detective rule (paper §II-C): the merge of two schema-level matching
/// graphs over the same columns — one capturing the *positive* semantics of
/// column col(p) (how the correct value links to the evidence columns) and
/// one capturing a *negative* semantics (how a known class of wrong values
/// links to the same evidence).
///
/// Stored as one graph whose nodes are partitioned into evidence nodes Ve,
/// the positive node p, and the negative node n, with col(p) = col(n).
/// The positive side of the rule is the subgraph without n; the negative
/// side is the subgraph without p; both must be connected.
///
/// Semantics against a tuple t and KB K (see core/repair.h):
///   1. Proof positive — an instance-level match of Ve ∪ {p} marks
///      t[col(Ve) ∪ col(p)] correct.
///   2. Proof negative + correction — an instance-level match of Ve ∪ {n}
///      (so t[col(n)] currently holds a *wrong* value) plus an instance x_p
///      consistent with the positive side and different from the negative
///      witness: t[col(n)] is repaired to label(x_p) and marked correct.
class DetectiveRule {
 public:
  DetectiveRule() = default;

  /// `graph` must contain both special nodes; every other node is evidence.
  DetectiveRule(std::string name, SchemaMatchingGraph graph, uint32_t positive_node,
                uint32_t negative_node)
      : name_(std::move(name)),
        graph_(std::move(graph)),
        positive_(positive_node),
        negative_(negative_node) {}

  const std::string& name() const { return name_; }
  const SchemaMatchingGraph& graph() const { return graph_; }
  uint32_t positive_node() const { return positive_; }
  uint32_t negative_node() const { return negative_; }

  /// Node indexes of the evidence set Ve (everything but p and n).
  std::vector<uint32_t> EvidenceNodes() const;

  /// Column names of the evidence nodes, in node order.
  std::vector<std::string> EvidenceColumns() const;

  /// The column this rule judges: col(p) = col(n).
  const std::string& TargetColumn() const { return graph_.node(positive_).column; }

  /// Checks the §II-C well-formedness conditions:
  ///   - the underlying graph is valid except that p and n intentionally
  ///     share a column;
  ///   - col(p) == col(n) and p != n;
  ///   - no edge connects p and n;
  ///   - both the positive subgraph (drop n) and the negative subgraph
  ///     (drop p) are connected;
  ///   - there is at least one evidence node.
  Status Validate() const;

  /// Multi-line rendering for logs / example output.
  std::string ToString() const;

  friend bool operator==(const DetectiveRule&, const DetectiveRule&) = default;

 private:
  std::string name_;
  SchemaMatchingGraph graph_;
  uint32_t positive_ = 0;
  uint32_t negative_ = 0;
};

/// Assembles a DetectiveRule from its two constituent matching graphs
/// (paper §III-A step S3): `positive_graph` and `negative_graph` must agree
/// on all nodes except the one over the shared target column. Fails if the
/// graphs differ in more than that node.
Result<DetectiveRule> MergeIntoRule(std::string name,
                                    const SchemaMatchingGraph& positive_graph,
                                    const SchemaMatchingGraph& negative_graph,
                                    std::string_view target_column);

}  // namespace detective

#endif  // DETECTIVE_CORE_RULE_H_
