#include "core/match_plan.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/metrics.h"
#include "common/trace.h"

namespace detective {

MatchPlan MatchPlan::Build(const KnowledgeBase& kb, std::span<const BoundRule> rules,
                           size_t num_threads) {
  const auto start = std::chrono::steady_clock::now();
  MatchPlan plan;
  for (const BoundRule& rule : rules) {
    if (!rule.usable) continue;
    for (const BoundNode& node : rule.nodes) {
      if (node.IsExistential()) continue;  // no cell value to index against
      if (node.sim.kind() == SimilarityKind::kEquality) continue;
      if (std::none_of(plan.keys_.begin(), plan.keys_.end(), [&](const Key& key) {
            return key.type == node.type && key.sim == node.sim;
          })) {
        plan.keys_.push_back({node.type, node.sim});
      }
    }
  }
  plan.indexes_.resize(plan.keys_.size());

  DETECTIVE_SCOPED_TIMER("matchplan.build");
  DETECTIVE_TRACE_SPAN("matchplan.build",
                       {"indexes", static_cast<int64_t>(plan.keys_.size())});
  if (!plan.keys_.empty()) {
    size_t threads = num_threads;
    if (threads == 0) {
      threads = std::max<size_t>(1, std::thread::hardware_concurrency());
    }
    threads = std::min(threads, plan.keys_.size());

    // One build task per index, claimed off an atomic counter: stragglers
    // (large types) don't idle the other builders.
    std::atomic<size_t> next{0};
    auto build_task = [&] {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= plan.keys_.size()) break;
        auto index = std::make_unique<SignatureIndex>(plan.keys_[i].sim);
        for (ItemId item : kb.InstancesOf(plan.keys_[i].type)) {
          index->Add(item.value(), kb.Label(item));
        }
        index->Build();
        DETECTIVE_COUNT("matchplan.indexes_built");
        plan.indexes_[i] = std::move(index);
      }
    };
    std::vector<std::thread> builders;
    builders.reserve(threads - 1);
    for (size_t t = 1; t < threads; ++t) builders.emplace_back(build_task);
    build_task();
    for (std::thread& builder : builders) builder.join();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  DETECTIVE_COUNT_N(
      "matchplan.build_ms",
      static_cast<size_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count()));
  return plan;
}

}  // namespace detective
