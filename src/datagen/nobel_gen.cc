#include "datagen/nobel_gen.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "datagen/names.h"

namespace detective {

namespace {

/// Convenience rule assembly: nodes are (column, type, sim) with one POS and
/// one NEG, edges given by node index.
struct RuleSpec {
  std::string name;
  std::vector<MatchNode> nodes;
  uint32_t positive;
  uint32_t negative;
  std::vector<MatchEdge> edges;
};

DetectiveRule BuildRule(RuleSpec spec) {
  SchemaMatchingGraph graph(std::move(spec.nodes), std::move(spec.edges));
  DetectiveRule rule(std::move(spec.name), std::move(graph), spec.positive,
                     spec.negative);
  rule.Validate().Abort("BuildRule");
  return rule;
}

}  // namespace

Dataset GenerateNobel(const NobelOptions& options) {
  Rng rng(options.seed);
  NameGenerator names(&rng);
  Dataset dataset;
  dataset.name = "Nobel";
  World& world = dataset.world;

  // ---- Taxonomy (the rich layers only materialize in Yago-style KBs) ----
  world.AddSubclass("laureate", "person");
  world.AddSubclass("chemistry award", "award");
  world.AddSubclass("other award", "award");
  world.AddSubclass("city", "populated place");
  world.AddSubclass("country", "populated place");
  world.AddSubclass("organization", "legal entity");

  std::unordered_set<std::string> used_labels;
  auto fresh = [&](auto&& generate) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::string label = generate();
      if (used_labels.insert(label).second) return label;
    }
    // Fall back to suffixing; uniqueness matters more than aesthetics.
    std::string label = generate() + " " + std::to_string(used_labels.size());
    used_labels.insert(label);
    return label;
  };

  // ---- Geography ----
  std::vector<World::EntityIndex> countries;
  for (size_t i = 0; i < options.num_countries; ++i) {
    countries.push_back(world.AddEntity(fresh([&] { return names.PlaceName(); }),
                                        "country"));
  }
  struct CityInfo {
    World::EntityIndex entity;
    size_t country;
  };
  std::vector<CityInfo> cities;
  for (size_t i = 0; i < options.num_cities; ++i) {
    size_t country = rng.NextIndex(countries.size());
    World::EntityIndex city =
        world.AddEntity(fresh([&] { return names.PlaceName(); }), "city");
    world.AddFact(city, "locatedIn", countries[country]);
    cities.push_back({city, country});
  }

  // ---- Institutions ----
  struct InstitutionInfo {
    World::EntityIndex entity;
    size_t city;
  };
  std::vector<InstitutionInfo> institutions;
  for (size_t i = 0; i < options.num_institutions; ++i) {
    size_t city = rng.NextIndex(cities.size());
    World::EntityIndex inst = world.AddEntity(
        fresh([&] { return names.InstitutionName(world.label(cities[city].entity)); }),
        "organization");
    world.AddFact(inst, "locatedIn", cities[city].entity);
    institutions.push_back({inst, city});
  }

  // ---- Prizes ----
  World::EntityIndex nobel_prize =
      world.AddEntity("Nobel Prize in Chemistry", "chemistry award");
  std::vector<World::EntityIndex> other_awards;
  for (size_t i = 0; i < options.num_other_awards; ++i) {
    other_awards.push_back(world.AddEntity(
        fresh([&] { return names.AwardName("Science"); }), "other award"));
  }

  // ---- Laureates and the relation ----
  dataset.clean = Relation(
      Schema({"Name", "DOB", "Country", "Prize", "Institution", "City"}));
  dataset.key_column = 0;

  for (size_t i = 0; i < options.num_laureates; ++i) {
    std::string person_name = fresh([&] { return names.PersonName(); });
    World::EntityIndex person = world.AddEntity(person_name, "laureate");
    dataset.key_entities.push_back(person);

    // Work institution determines the work city; citizenship follows the
    // work city's country so that the country rule's two positive edges
    // (isCitizenOf + City locatedIn) agree.
    size_t inst = rng.NextIndex(institutions.size());
    size_t work_city = institutions[inst].city;
    size_t citizenship = cities[work_city].country;

    // Birth city: a different city, preferably in a different country, so
    // semantic errors on City/Country are detectably wrong.
    size_t birth_city = rng.NextIndex(cities.size());
    for (int attempt = 0;
         attempt < 16 && (birth_city == work_city ||
                          cities[birth_city].country == citizenship);
         ++attempt) {
      birth_city = rng.NextIndex(cities.size());
    }
    size_t birth_country = cities[birth_city].country;

    // Alma mater distinct from the work institution.
    size_t alma = rng.NextIndex(institutions.size());
    if (alma == inst) alma = (alma + 1) % institutions.size();

    std::string dob = names.DateString(1900, 1980);
    std::string dod = names.DateString(1981, 2015);
    World::EntityIndex other_award = other_awards[rng.NextIndex(other_awards.size())];

    world.AddFact(person, "worksAt", institutions[inst].entity);
    world.AddFact(person, "graduatedFrom", institutions[alma].entity);
    world.AddFact(person, "wasBornIn", cities[birth_city].entity);
    world.AddFact(person, "isCitizenOf", countries[citizenship]);
    world.AddFact(person, "bornInCountry", countries[birth_country]);
    world.AddFact(person, "wonPrize", nobel_prize);
    world.AddFact(person, "wonPrize", other_award);
    world.AddLiteralFact(person, "bornOnDate", dob);
    world.AddLiteralFact(person, "diedOnDate", dod);

    dataset.clean
        .Append({person_name, dob, world.label(countries[citizenship]),
                 "Nobel Prize in Chemistry", world.label(institutions[inst].entity),
                 world.label(cities[work_city].entity)})
        .Abort("GenerateNobel");

    // Semantic alternatives per column, aligned with the rules' negative
    // semantics. Name has none (typos only).
    dataset.alternatives.push_back({
        /*Name*/ {},
        /*DOB*/ {dod},
        /*Country*/ {world.label(countries[birth_country])},
        /*Prize*/ {world.label(other_award)},
        /*Institution*/ {world.label(institutions[alma].entity)},
        /*City*/ {world.label(cities[birth_city].entity)},
    });
  }

  // ---- Detective rules (mirroring the paper's Fig. 4) ----
  const Similarity eq = Similarity::Equality();
  const Similarity ed2 = Similarity::EditDistance(2);

  // phi1-style: Institution via worksAt (+) vs graduatedFrom (-).
  dataset.rules.push_back(BuildRule({
      .name = "nobel_institution",
      .nodes = {{"Name", "laureate", eq},
                {"DOB", "literal", eq},
                {"Institution", "organization", ed2},   // p
                {"Institution", "organization", ed2}},  // n
      .positive = 2,
      .negative = 3,
      .edges = {{0, 1, "bornOnDate"}, {0, 2, "worksAt"}, {0, 3, "graduatedFrom"}},
  }));

  // phi2-style: City via worksAt.locatedIn (+) vs wasBornIn (-).
  dataset.rules.push_back(BuildRule({
      .name = "nobel_city",
      .nodes = {{"Name", "laureate", eq},
                {"Institution", "organization", ed2},
                {"City", "city", ed2},   // p
                {"City", "city", ed2}},  // n
      .positive = 2,
      .negative = 3,
      .edges = {{0, 1, "worksAt"}, {1, 2, "locatedIn"}, {0, 3, "wasBornIn"}},
  }));

  // phi3-style: Country via isCitizenOf + City.locatedIn (+) vs
  // bornInCountry (-); evidence Name, Institution, City.
  dataset.rules.push_back(BuildRule({
      .name = "nobel_country",
      .nodes = {{"Name", "laureate", eq},
                {"Institution", "organization", ed2},
                {"City", "city", ed2},
                {"Country", "country", ed2},   // p
                {"Country", "country", ed2}},  // n
      .positive = 3,
      .negative = 4,
      .edges = {{0, 1, "worksAt"},
                {1, 2, "locatedIn"},
                {2, 3, "locatedIn"},
                {0, 3, "isCitizenOf"},
                {0, 4, "bornInCountry"}},
  }));

  // phi4-style: Prize via wonPrize into disjoint award classes.
  dataset.rules.push_back(BuildRule({
      .name = "nobel_prize",
      .nodes = {{"Name", "laureate", eq},
                {"Prize", "chemistry award", ed2},  // p
                {"Prize", "other award", ed2}},     // n
      .positive = 1,
      .negative = 2,
      .edges = {{0, 1, "wonPrize"}, {0, 2, "wonPrize"}},
  }));

  // DOB via bornOnDate (+) vs diedOnDate (-).
  dataset.rules.push_back(BuildRule({
      .name = "nobel_dob",
      .nodes = {{"Name", "laureate", eq},
                {"DOB", "literal", ed2},   // p
                {"DOB", "literal", ed2}},  // n
      .positive = 1,
      .negative = 2,
      .edges = {{0, 1, "bornOnDate"}, {0, 2, "diedOnDate"}},
  }));

  // ---- Exclusive strata demo pair (NobelOptions::exclusive_strata_rules) ----
  // City and Country judge each other's column as evidence, so the pair is a
  // nominal interaction cycle; but their Prize gates name the sibling classes
  // "chemistry award" / "other award", whose instance labels never overlap.
  // With nobel_prize excluded (nothing writes Prize), the stratification
  // analyzer proves at most one of the pair fires per tuple.
  if (options.exclusive_strata_rules) {
    dataset.rules.push_back(BuildRule({
        .name = "nobel_city_chem",
        .nodes = {{"Name", "laureate", eq},
                  {"Prize", "chemistry award", eq},
                  {"Institution", "organization", eq},
                  {"Country", "country", eq},
                  {"City", "city", eq},   // p
                  {"City", "city", eq}},  // n
        .positive = 4,
        .negative = 5,
        .edges = {{0, 1, "wonPrize"},
                  {0, 2, "worksAt"},
                  {2, 4, "locatedIn"},
                  {0, 3, "isCitizenOf"},
                  {0, 5, "wasBornIn"}},
    }));
    dataset.rules.push_back(BuildRule({
        .name = "nobel_country_other",
        .nodes = {{"Name", "laureate", eq},
                  {"Prize", "other award", eq},
                  {"Institution", "organization", eq},
                  {"City", "city", eq},
                  {"Country", "country", eq},   // p
                  {"Country", "country", eq}},  // n
        .positive = 4,
        .negative = 5,
        .edges = {{0, 1, "wonPrize"},
                  {0, 2, "worksAt"},
                  {2, 3, "locatedIn"},
                  {3, 4, "locatedIn"},
                  {0, 4, "isCitizenOf"},
                  {0, 5, "bornInCountry"}},
    }));
  }

  // ---- KATARA table pattern: the holistic positive-semantics graph ----
  {
    SchemaMatchingGraph pattern;
    uint32_t name = pattern.AddNode({"Name", "laureate", eq});
    uint32_t dob = pattern.AddNode({"DOB", "literal", eq});
    uint32_t country = pattern.AddNode({"Country", "country", eq});
    uint32_t prize = pattern.AddNode({"Prize", "chemistry award", eq});
    // KATARA "does not support fuzzy matching" (paper Exp-1), so its
    // pattern uses equality everywhere.
    uint32_t inst = pattern.AddNode({"Institution", "organization", eq});
    uint32_t city = pattern.AddNode({"City", "city", eq});
    pattern.AddEdge(name, dob, "bornOnDate").Abort("pattern");
    pattern.AddEdge(name, country, "isCitizenOf").Abort("pattern");
    pattern.AddEdge(name, prize, "wonPrize").Abort("pattern");
    pattern.AddEdge(name, inst, "worksAt").Abort("pattern");
    pattern.AddEdge(inst, city, "locatedIn").Abort("pattern");
    dataset.katara_pattern = std::move(pattern);
  }

  // ---- FDs for the IC baselines ----
  dataset.fds = {
      {{"Institution"}, "City"},
      {{"City"}, "Country"},
  };
  return dataset;
}

}  // namespace detective
