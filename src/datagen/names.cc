#include "datagen/names.h"

#include <array>
#include <cctype>

namespace detective {

namespace {

constexpr std::array<const char*, 24> kSyllables = {
    "ba", "ke", "li", "mo", "ran", "sel", "ta", "vi", "wen", "zor", "dra", "fel",
    "gos", "hul", "jin", "kas", "lum", "mer", "nor", "pel", "quin", "rud", "sin",
    "tor"};

}  // namespace

std::string NameGenerator::Word(size_t min_syllables, size_t max_syllables) {
  size_t count = min_syllables +
                 static_cast<size_t>(rng_->NextUint64(max_syllables - min_syllables + 1));
  std::string word;
  for (size_t i = 0; i < count; ++i) {
    word += kSyllables[rng_->NextIndex(kSyllables.size())];
  }
  return word;
}

std::string NameGenerator::Capitalized(size_t min_syllables, size_t max_syllables) {
  std::string word = Word(min_syllables, max_syllables);
  word[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(word[0])));
  return word;
}

std::string NameGenerator::PersonName() {
  return Capitalized(2, 3) + " " + Capitalized(2, 4);
}

std::string NameGenerator::PlaceName() { return Capitalized(2, 4); }

std::string NameGenerator::InstitutionName(const std::string& city) {
  switch (rng_->NextUint64(4)) {
    case 0:
      return "University of " + city;
    case 1:
      return city + " Institute of Technology";
    case 2:
      return city + " State University";
    default:
      return Capitalized(2, 3) + " College of " + city;
  }
}

std::string NameGenerator::AwardName(const std::string& field) {
  switch (rng_->NextUint64(3)) {
    case 0:
      return Capitalized(2, 3) + " Prize in " + field;
    case 1:
      return Capitalized(2, 3) + " Medal of " + field;
    default:
      return Capitalized(2, 3) + " Award for " + field;
  }
}

std::string NameGenerator::DateString(int year_lo, int year_hi) {
  int year = static_cast<int>(rng_->NextInt64(year_lo, year_hi));
  int month = static_cast<int>(rng_->NextInt64(1, 12));
  int day = static_cast<int>(rng_->NextInt64(1, 28));
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02d", year, month, day);
  return buffer;
}

std::string NameGenerator::ZipCode() {
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "%05llu",
                static_cast<unsigned long long>(rng_->NextUint64(100000)));
  return buffer;
}

}  // namespace detective
