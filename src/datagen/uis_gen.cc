#include "datagen/uis_gen.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "datagen/names.h"

namespace detective {

namespace {

struct RuleSpec {
  std::string name;
  std::vector<MatchNode> nodes;
  uint32_t positive;
  uint32_t negative;
  std::vector<MatchEdge> edges;
};

DetectiveRule BuildRule(RuleSpec spec) {
  SchemaMatchingGraph graph(std::move(spec.nodes), std::move(spec.edges));
  DetectiveRule rule(std::move(spec.name), std::move(graph), spec.positive,
                     spec.negative);
  rule.Validate().Abort("BuildRule");
  return rule;
}

}  // namespace

Dataset GenerateUis(const UisOptions& options) {
  Rng rng(options.seed);
  NameGenerator names(&rng);
  Dataset dataset;
  dataset.name = "UIS";
  World& world = dataset.world;

  world.AddSubclass("student", "person");
  world.AddSubclass("university", "organization");
  world.AddSubclass("city", "populated place");
  world.AddSubclass("state", "populated place");
  world.AddSubclass("zipcode", "identifier");

  std::unordered_set<std::string> used_labels;
  auto fresh = [&](auto&& generate) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      std::string label = generate();
      if (used_labels.insert(label).second) return label;
    }
    std::string label = generate() + " " + std::to_string(used_labels.size());
    used_labels.insert(label);
    return label;
  };

  // ---- States, cities (with current + old zip), universities ----
  std::vector<World::EntityIndex> states;
  for (size_t i = 0; i < options.num_states; ++i) {
    states.push_back(world.AddEntity(fresh([&] { return names.PlaceName(); }),
                                     "state"));
  }
  struct CityInfo {
    World::EntityIndex entity;
    World::EntityIndex zip;
    std::string zip_label;
    std::string old_zip_label;
    size_t state;
  };
  std::vector<CityInfo> cities;
  for (size_t i = 0; i < options.num_cities; ++i) {
    size_t state = rng.NextIndex(states.size());
    World::EntityIndex city =
        world.AddEntity(fresh([&] { return names.PlaceName(); }), "city");
    std::string zip_label = fresh([&] { return names.ZipCode(); });
    std::string old_zip_label = fresh([&] { return names.ZipCode(); });
    World::EntityIndex zip = world.AddEntity(zip_label, "zipcode");
    World::EntityIndex old_zip = world.AddEntity(old_zip_label, "zipcode");
    world.AddFact(city, "locatedIn", states[state]);
    world.AddFact(city, "hasZip", zip);
    world.AddFact(city, "oldZip", old_zip);
    world.AddFact(zip, "zipInState", states[state]);
    cities.push_back({city, zip, zip_label, old_zip_label, state});
  }
  struct UniversityInfo {
    World::EntityIndex entity;
    size_t city;
  };
  std::vector<UniversityInfo> universities;
  for (size_t i = 0; i < options.num_universities; ++i) {
    size_t city = rng.NextIndex(cities.size());
    World::EntityIndex univ = world.AddEntity(
        fresh([&] { return names.InstitutionName(world.label(cities[city].entity)); }),
        "university");
    world.AddFact(univ, "locatedIn", cities[city].entity);
    universities.push_back({univ, city});
  }

  // ---- Students and the relation ----
  dataset.clean = Relation(Schema({"Name", "University", "City", "State", "Zip"}));
  dataset.key_column = 0;

  for (size_t i = 0; i < options.num_tuples; ++i) {
    std::string person_name = fresh([&] { return names.PersonName(); });
    World::EntityIndex person = world.AddEntity(person_name, "student");
    dataset.key_entities.push_back(person);

    size_t univ = rng.NextIndex(universities.size());
    size_t city = universities[univ].city;
    size_t state = cities[city].state;

    size_t applied = rng.NextIndex(universities.size());
    if (applied == univ) applied = (applied + 1) % universities.size();

    size_t birth_city = rng.NextIndex(cities.size());
    for (int attempt = 0;
         attempt < 16 && (birth_city == city || cities[birth_city].state == state);
         ++attempt) {
      birth_city = rng.NextIndex(cities.size());
    }
    size_t birth_state = cities[birth_city].state;

    world.AddFact(person, "studiesAt", universities[univ].entity);
    world.AddFact(person, "appliedTo", universities[applied].entity);
    world.AddFact(person, "livesIn", cities[city].entity);
    world.AddFact(person, "bornIn", cities[birth_city].entity);
    world.AddFact(person, "bornInState", states[birth_state]);

    dataset.clean
        .Append({person_name, world.label(universities[univ].entity),
                 world.label(cities[city].entity), world.label(states[state]),
                 cities[city].zip_label})
        .Abort("GenerateUis");

    dataset.alternatives.push_back({
        /*Name*/ {},
        /*University*/ {world.label(universities[applied].entity)},
        /*City*/ {world.label(cities[birth_city].entity)},
        /*State*/ {world.label(states[birth_state])},
        /*Zip*/ {cities[city].old_zip_label},
    });
  }

  // ---- Detective rules ----
  const Similarity eq = Similarity::Equality();
  const Similarity ed2 = Similarity::EditDistance(2);

  dataset.rules.push_back(BuildRule({
      .name = "uis_university",
      .nodes = {{"Name", "student", eq},
                {"University", "university", ed2},   // p
                {"University", "university", ed2}},  // n
      .positive = 1,
      .negative = 2,
      .edges = {{0, 1, "studiesAt"}, {0, 2, "appliedTo"}},
  }));

  dataset.rules.push_back(BuildRule({
      .name = "uis_city",
      .nodes = {{"Name", "student", eq},
                {"University", "university", ed2},
                {"City", "city", ed2},   // p
                {"City", "city", ed2}},  // n
      .positive = 2,
      .negative = 3,
      .edges = {{0, 1, "studiesAt"}, {1, 2, "locatedIn"}, {0, 3, "bornIn"}},
  }));

  dataset.rules.push_back(BuildRule({
      .name = "uis_state",
      .nodes = {{"Name", "student", eq},
                {"City", "city", ed2},
                {"State", "state", ed2},   // p
                {"State", "state", ed2}},  // n
      .positive = 2,
      .negative = 3,
      .edges = {{0, 1, "livesIn"}, {1, 2, "locatedIn"}, {0, 3, "bornInState"}},
  }));

  dataset.rules.push_back(BuildRule({
      .name = "uis_zip",
      .nodes = {{"Name", "student", eq},
                {"City", "city", ed2},
                {"Zip", "zipcode", ed2},   // p
                {"Zip", "zipcode", ed2}},  // n
      .positive = 2,
      .negative = 3,
      .edges = {{0, 1, "livesIn"}, {1, 2, "hasZip"}, {1, 3, "oldZip"}},
  }));

  // Second witness for State, routed through the zip code; consistent with
  // uis_state because zipInState(city's zip) == locatedIn(city).
  dataset.rules.push_back(BuildRule({
      .name = "uis_state_via_zip",
      .nodes = {{"Name", "student", eq},
                {"City", "city", ed2},
                {"Zip", "zipcode", ed2},
                {"State", "state", ed2},   // p
                {"State", "state", ed2}},  // n
      .positive = 3,
      .negative = 4,
      .edges = {{0, 1, "livesIn"},
                {1, 2, "hasZip"},
                {2, 3, "zipInState"},
                {0, 4, "bornInState"}},
  }));

  // ---- KATARA table pattern ----
  {
    SchemaMatchingGraph pattern;
    uint32_t name = pattern.AddNode({"Name", "student", eq});
    // KATARA without fuzzy matching (paper Exp-1).
    uint32_t univ = pattern.AddNode({"University", "university", eq});
    uint32_t city = pattern.AddNode({"City", "city", eq});
    uint32_t state = pattern.AddNode({"State", "state", eq});
    uint32_t zip = pattern.AddNode({"Zip", "zipcode", eq});
    pattern.AddEdge(name, univ, "studiesAt").Abort("pattern");
    pattern.AddEdge(univ, city, "locatedIn").Abort("pattern");
    pattern.AddEdge(city, state, "locatedIn").Abort("pattern");
    pattern.AddEdge(city, zip, "hasZip").Abort("pattern");
    dataset.katara_pattern = std::move(pattern);
  }

  dataset.fds = {
      {{"University"}, "City"},
      {{"City"}, "State"},
      {{"City"}, "Zip"},
  };
  return dataset;
}

}  // namespace detective
