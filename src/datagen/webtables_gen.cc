#include "datagen/webtables_gen.h"

#include <array>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "datagen/names.h"

namespace detective {

namespace {

/// One attribute column of a domain: entities of `cls` linked from the key
/// by `pos_rel` (the correct semantics) and `neg_rel` (the confusable one).
struct AttrSpec {
  const char* column;
  const char* cls;
  const char* pos_rel;
  const char* neg_rel;
  /// Whether the rule nodes use fuzzy matching (ED,2) — mixed across
  /// domains so typo repairability varies like it does on real Web tables.
  bool fuzzy;
};

struct DomainSpec {
  const char* name;
  const char* key_column;
  const char* key_cls;
  AttrSpec first;
  AttrSpec second;  // used only by three-column tables
};

constexpr std::array<DomainSpec, 13> kDomains = {{
    {"countries", "Country", "country",
     {"Capital", "city", "hasCapital", "largestCity", true},
     {"Currency", "currency", "usesCurrency", "formerCurrency", false}},
    {"books", "Book", "book",
     {"Author", "writer", "writtenBy", "translatedBy", true},
     {"Publisher", "publisher", "publishedBy", "distributedBy", false}},
    {"films", "Film", "film",
     {"Director", "director", "directedBy", "producedBy", true},
     {"Studio", "studio", "madeBy", "fundedBy", false}},
    {"companies", "Company", "company",
     {"CEO", "executive", "ledBy", "foundedBy", true},
     {"Headquarters", "city", "headquarteredIn", "registeredIn", false}},
    {"teams", "Team", "sports team",
     {"HomeCity", "city", "basedIn", "foundedIn", true},
     {"Stadium", "stadium", "playsAt", "trainedAt", false}},
    {"mountains", "Mountain", "mountain",
     {"Range", "mountain range", "partOf", "visibleFrom", false},
     {"Country", "country", "locatedIn", "borderedBy", true}},
    {"rivers", "River", "river",
     {"Mouth", "sea", "flowsInto", "originatesNear", false},
     {"Country", "country", "flowsThrough", "namedAfterPlace", true}},
    {"albums", "Album", "album",
     {"Artist", "musician", "performedBy", "producedByArtist", true},
     {"Label", "record label", "releasedBy", "licensedBy", false}},
    {"museums", "Museum", "museum",
     {"City", "city", "locatedIn", "foundedInCity", true},
     {"Founder", "person", "foundedByPerson", "curatedBy", false}},
    {"airlines", "Airline", "airline",
     {"Hub", "airport", "hubAt", "foundedAt", false},
     {"Country", "country", "registeredInCountry", "fliesTo", true}},
    {"languages", "Language", "language",
     {"Country", "country", "officialIn", "minorityIn", true},
     {"Family", "language family", "memberOf", "influencedBy", false}},
    {"dishes", "Dish", "dish",
     {"Origin", "country", "originatesFrom", "popularIn", true},
     {"Ingredient", "ingredient", "madeWith", "garnishedWith", false}},
    {"operas", "Opera", "opera",
     {"Composer", "composer", "composedBy", "conductedBy", true},
     {"Premiere", "city", "premieredIn", "revivedIn", false}},
}};

/// Per-domain entity pools, built once into the shared world.
struct DomainPool {
  std::vector<World::EntityIndex> keys;
  // Per key: correct and confusable entity for each attribute.
  std::vector<World::EntityIndex> first_pos, first_neg;
  std::vector<World::EntityIndex> second_pos, second_neg;
};

DetectiveRule MakeWebRule(const std::string& table, const DomainSpec& domain,
                          const AttrSpec& attr) {
  Similarity key_sim = Similarity::Equality();
  Similarity attr_sim =
      attr.fuzzy ? Similarity::EditDistance(2) : Similarity::Equality();
  SchemaMatchingGraph graph(
      {{domain.key_column, domain.key_cls, key_sim},
       {attr.column, attr.cls, attr_sim},    // p
       {attr.column, attr.cls, attr_sim}},   // n
      {{0, 1, attr.pos_rel}, {0, 2, attr.neg_rel}});
  DetectiveRule rule(table + "_" + attr.column, std::move(graph), 1, 2);
  rule.Validate().Abort("MakeWebRule");
  return rule;
}

}  // namespace

size_t WebTablesCorpus::total_rules() const {
  size_t count = 0;
  for (const WebTable& table : tables) count += table.rules.size();
  return count;
}

WebTablesCorpus GenerateWebTables(const WebTablesOptions& options) {
  Rng rng(options.seed);
  NameGenerator names(&rng);
  WebTablesCorpus corpus;
  World& world = corpus.world;

  std::unordered_set<std::string> used_labels;
  auto fresh = [&]() {
    for (int attempt = 0; attempt < 32; ++attempt) {
      std::string label = names.PersonName();
      if (rng.NextBernoulli(0.5)) label = names.PlaceName();
      if (used_labels.insert(label).second) return label;
    }
    std::string label = names.PlaceName() + " " + std::to_string(used_labels.size());
    used_labels.insert(label);
    return label;
  };

  // ---- Shared world: pools per domain ----
  constexpr size_t kKeysPerDomain = 120;
  constexpr size_t kAttrPoolSize = 60;
  std::vector<DomainPool> pools(kDomains.size());
  for (size_t d = 0; d < kDomains.size(); ++d) {
    const DomainSpec& domain = kDomains[d];
    DomainPool& pool = pools[d];
    auto attr_pool = [&](const char* cls) {
      std::vector<World::EntityIndex> entities;
      for (size_t i = 0; i < kAttrPoolSize; ++i) {
        entities.push_back(world.AddEntity(fresh(), cls));
      }
      return entities;
    };
    std::vector<World::EntityIndex> first_entities = attr_pool(domain.first.cls);
    std::vector<World::EntityIndex> second_entities = attr_pool(domain.second.cls);

    for (size_t k = 0; k < kKeysPerDomain; ++k) {
      World::EntityIndex key = world.AddEntity(fresh(), domain.key_cls);
      pool.keys.push_back(key);
      auto link = [&](const AttrSpec& attr,
                      const std::vector<World::EntityIndex>& entities,
                      std::vector<World::EntityIndex>* pos_out,
                      std::vector<World::EntityIndex>* neg_out) {
        size_t pos = rng.NextIndex(entities.size());
        size_t neg = rng.NextIndex(entities.size());
        if (neg == pos) neg = (neg + 1) % entities.size();
        world.AddFact(key, attr.pos_rel, entities[pos]);
        world.AddFact(key, attr.neg_rel, entities[neg]);
        pos_out->push_back(entities[pos]);
        neg_out->push_back(entities[neg]);
      };
      link(domain.first, first_entities, &pool.first_pos, &pool.first_neg);
      link(domain.second, second_entities, &pool.second_pos, &pool.second_neg);
    }
  }

  // ---- Tables ----
  for (size_t t = 0; t < options.num_tables; ++t) {
    size_t d = t % kDomains.size();
    const DomainSpec& domain = kDomains[d];
    const DomainPool& pool = pools[d];
    const bool three_columns = t < kDomains.size();

    WebTable table;
    table.name = std::string(domain.name) + "_" + std::to_string(t);
    std::vector<std::string> columns = {domain.key_column, domain.first.column};
    if (three_columns) columns.push_back(domain.second.column);
    table.clean = Relation(Schema(std::move(columns)));
    table.key_column = 0;

    size_t tuples = options.avg_tuples;
    size_t spread = options.avg_tuples / 3;
    tuples = options.avg_tuples - spread +
             static_cast<size_t>(rng.NextUint64(2 * spread + 1));
    tuples = std::min(tuples, pool.keys.size());

    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(pool.keys.size(), tuples);
    for (size_t pick : picks) {
      corpus.key_entities.push_back(pool.keys[pick]);
      std::vector<std::string> row = {world.label(pool.keys[pick]),
                                      world.label(pool.first_pos[pick])};
      std::vector<std::vector<std::string>> alts = {
          {}, {world.label(pool.first_neg[pick])}};
      if (three_columns) {
        row.push_back(world.label(pool.second_pos[pick]));
        alts.push_back({world.label(pool.second_neg[pick])});
      }
      table.clean.Append(std::move(row)).Abort("GenerateWebTables");
      table.alternatives.push_back(std::move(alts));
    }

    // Rules and the KATARA pattern.
    table.rules.push_back(MakeWebRule(table.name, domain, domain.first));
    SchemaMatchingGraph pattern;
    uint32_t key_node = pattern.AddNode(
        {domain.key_column, domain.key_cls, Similarity::Equality()});
    uint32_t first_node = pattern.AddNode(
        {domain.first.column, domain.first.cls,
         domain.first.fuzzy ? Similarity::EditDistance(2) : Similarity::Equality()});
    pattern.AddEdge(key_node, first_node, domain.first.pos_rel).Abort("pattern");
    if (three_columns) {
      table.rules.push_back(MakeWebRule(table.name, domain, domain.second));
      uint32_t second_node = pattern.AddNode(
          {domain.second.column, domain.second.cls,
           domain.second.fuzzy ? Similarity::EditDistance(2)
                               : Similarity::Equality()});
      pattern.AddEdge(key_node, second_node, domain.second.pos_rel).Abort("pattern");
    }
    table.katara_pattern = std::move(pattern);

    // Born dirty: inject noise now and keep the records.
    table.dirty = table.clean;
    ErrorSpec spec;
    spec.error_rate = options.error_rate;
    spec.typo_fraction = options.typo_fraction;
    spec.seed = options.seed * 1000 + t;
    table.errors = InjectErrors(&table.dirty, spec, table.alternatives);

    corpus.tables.push_back(std::move(table));
  }
  return corpus;
}

}  // namespace detective
