#ifndef DETECTIVE_DATAGEN_UIS_GEN_H_
#define DETECTIVE_DATAGEN_UIS_GEN_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace detective {

/// Options for the synthetic UIS dataset (paper §V-A dataset (3): 100K
/// tuples from the UIS Database Generator).
struct UisOptions {
  size_t num_tuples = 100000;
  size_t num_states = 50;
  size_t num_cities = 400;
  size_t num_universities = 300;
  uint64_t seed = 11;
};

/// Generates the UIS dataset: schema
///   UIS(Name, University, City, State, Zip)
/// where University determines City (locatedIn), City determines State
/// (inState) and Zip (hasZip). Five curated detective rules:
///
///   uis_university : studiesAt (+) vs appliedTo (-), evid {Name}
///   uis_city       : studiesAt.locatedIn (+) vs bornIn (-)
///   uis_state      : City inState (+) vs bornInState (-)
///   uis_zip        : City hasZip (+) vs City oldZip (-)
///   uis_city_zip   : Zip zipOfCity (+) vs bornIn (-)   [second witness for City]
///
/// Semantic alternatives: applied-to university, birth city, birth state,
/// the city's previous zip code.
Dataset GenerateUis(const UisOptions& options = {});

}  // namespace detective

#endif  // DETECTIVE_DATAGEN_UIS_GEN_H_
