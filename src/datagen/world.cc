#include "datagen/world.h"

#include <unordered_set>

#include "common/random.h"

namespace detective {

KbProfile YagoProfile() {
  KbProfile profile;
  profile.name = "Yago";
  profile.entity_coverage = 0.97;
  profile.fact_coverage = 0.96;
  profile.rich_taxonomy = true;
  profile.seed = 1234;
  return profile;
}

KbProfile DBpediaProfile() {
  KbProfile profile;
  profile.name = "DBpedia";
  profile.entity_coverage = 0.92;
  profile.fact_coverage = 0.88;
  profile.rich_taxonomy = false;
  profile.seed = 5678;
  return profile;
}

World::EntityIndex World::AddEntity(std::string label, std::string cls) {
  entities_.push_back({std::move(label), std::move(cls)});
  return static_cast<EntityIndex>(entities_.size() - 1);
}

void World::AddFact(EntityIndex subject, std::string relation, EntityIndex object) {
  facts_.push_back({subject, std::move(relation), object, false, {}});
}

void World::AddLiteralFact(EntityIndex subject, std::string relation,
                           std::string literal) {
  facts_.push_back({subject, std::move(relation), 0, true, std::move(literal)});
}

void World::AddSubclass(std::string sub, std::string super) {
  taxonomy_.emplace_back(std::move(sub), std::move(super));
}

KnowledgeBase World::ToKb(const KbProfile& profile,
                          const std::vector<EntityIndex>& always_keep) const {
  Rng rng(profile.seed);
  std::unordered_set<EntityIndex> pinned(always_keep.begin(), always_keep.end());

  KbBuilder builder;
  if (profile.rich_taxonomy) {
    for (const auto& [sub, super] : taxonomy_) builder.AddSubclass(sub, super);
  }
  // Classes and relation names are schema-level vocabulary: they exist in
  // the KB even when coverage drops their instances/facts (a real KB's
  // ontology does not shrink because a fact is missing). Only instance and
  // fact coverage vary per profile.
  for (const Entity& entity : entities_) builder.AddClass(entity.cls);
  for (const Fact& fact : facts_) builder.AddRelation(fact.relation);

  // Entity projection. ItemId::Invalid() marks dropped entities. Hub
  // entities (high fact degree) are always kept: missing coverage in real
  // KBs concentrates in the long tail.
  std::vector<size_t> degree(entities_.size(), 0);
  for (const Fact& fact : facts_) {
    ++degree[fact.subject];
    if (!fact.object_is_literal) ++degree[fact.object];
  }
  std::vector<ItemId> item_of(entities_.size(), ItemId::Invalid());
  for (EntityIndex e = 0; e < entities_.size(); ++e) {
    bool keep = pinned.contains(e) || degree[e] >= profile.popular_degree ||
                rng.NextBernoulli(profile.entity_coverage);
    if (!keep) continue;
    ClassId cls = builder.AddClass(entities_[e].cls);
    item_of[e] = builder.AddEntity(entities_[e].label, {cls});
  }

  // Fact projection.
  for (const Fact& fact : facts_) {
    ItemId subject = item_of[fact.subject];
    if (!subject.valid()) continue;
    if (!rng.NextBernoulli(profile.fact_coverage)) continue;
    RelationId relation = builder.AddRelation(fact.relation);
    if (fact.object_is_literal) {
      builder.AddEdge(subject, relation, builder.AddLiteral(fact.literal));
    } else {
      ItemId object = item_of[fact.object];
      if (!object.valid()) continue;
      builder.AddEdge(subject, relation, object);
    }
  }
  return std::move(builder).Freeze();
}

}  // namespace detective
