#ifndef DETECTIVE_DATAGEN_DATASET_H_
#define DETECTIVE_DATAGEN_DATASET_H_

#include <string>
#include <vector>

#include "baselines/fd.h"
#include "core/matching_graph.h"
#include "core/rule.h"
#include "datagen/error_injector.h"
#include "datagen/world.h"
#include "relation/relation.h"

namespace detective {

/// Everything one experiment needs about a generated dataset: the clean
/// relation (ground truth), the world model it was projected from, the
/// curated detective rules (the paper's expert-verified rules), the inputs
/// for every baseline, and the per-cell semantic-error alternatives for the
/// injector.
struct Dataset {
  std::string name;
  Relation clean;
  World world;
  SemanticAlternatives alternatives;
  std::vector<DetectiveRule> rules;
  std::vector<FunctionalDependency> fds;  // for Llunatic / constant CFDs
  SchemaMatchingGraph katara_pattern;     // holistic table pattern for KATARA
  ColumnIndex key_column = 0;
  /// World entities backing the key column, pinned into every KB projection
  /// so evaluation eligibility (key present in KB) matches the paper's
  /// methodology.
  std::vector<World::EntityIndex> key_entities;
};

}  // namespace detective

#endif  // DETECTIVE_DATAGEN_DATASET_H_
