#include "datagen/error_injector.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace detective {

std::string MakeTypo(const std::string& value, Rng* rng) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  std::string result = value;
  size_t edits = 1 + static_cast<size_t>(rng->NextUint64(2));
  for (size_t i = 0; i < edits; ++i) {
    if (result.empty()) {
      result.push_back(kAlphabet[rng->NextIndex(26)]);
      continue;
    }
    switch (rng->NextUint64(3)) {
      case 0: {  // substitute
        size_t pos = rng->NextIndex(result.size());
        char replacement = kAlphabet[rng->NextIndex(26)];
        if (result[pos] == replacement) replacement = replacement == 'z' ? 'a' : replacement + 1;
        result[pos] = replacement;
        break;
      }
      case 1: {  // delete
        result.erase(rng->NextIndex(result.size()), 1);
        break;
      }
      default: {  // insert
        size_t pos = static_cast<size_t>(rng->NextUint64(result.size() + 1));
        result.insert(result.begin() + static_cast<ptrdiff_t>(pos),
                      kAlphabet[rng->NextIndex(26)]);
        break;
      }
    }
  }
  if (result == value) result.push_back('x');  // edits cancelled out
  return result;
}

std::vector<ErrorRecord> InjectErrors(Relation* relation, const ErrorSpec& spec,
                                      const SemanticAlternatives& alternatives) {
  Rng rng(spec.seed);
  const size_t num_cells = relation->num_cells();
  size_t num_errors = static_cast<size_t>(
      std::llround(spec.error_rate * static_cast<double>(num_cells)));
  num_errors = std::min(num_errors, num_cells);

  const size_t num_columns = relation->schema().num_columns();
  std::vector<size_t> cells = rng.SampleWithoutReplacement(num_cells, num_errors);
  std::sort(cells.begin(), cells.end());

  std::vector<ErrorRecord> errors;
  errors.reserve(num_errors);
  for (size_t cell : cells) {
    size_t row = cell / num_columns;
    ColumnIndex column = static_cast<ColumnIndex>(cell % num_columns);
    std::string clean(relation->value(row, column));

    bool typo = rng.NextBernoulli(spec.typo_fraction);
    std::string dirty;
    ErrorType type;
    const std::vector<std::string>* options = nullptr;
    if (!typo && row < alternatives.size() && column < alternatives[row].size() &&
        !alternatives[row][column].empty()) {
      options = &alternatives[row][column];
    }
    if (options != nullptr) {
      dirty = (*options)[rng.NextIndex(options->size())];
      type = ErrorType::kSemantic;
      if (dirty == clean) {
        dirty = MakeTypo(clean, &rng);  // degenerate alternative; fall back
        type = ErrorType::kTypo;
      }
    } else {
      dirty = MakeTypo(clean, &rng);
      type = ErrorType::kTypo;
    }
    relation->SetValue(row, column, dirty);
    errors.push_back({row, column, std::move(clean), std::move(dirty), type});
  }
  return errors;
}

std::vector<ErrorRecord> InjectErrors(Relation* relation, const ErrorSpec& spec) {
  return InjectErrors(relation, spec, SemanticAlternatives{});
}

}  // namespace detective
