#ifndef DETECTIVE_DATAGEN_NOBEL_GEN_H_
#define DETECTIVE_DATAGEN_NOBEL_GEN_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace detective {

/// Options for the synthetic Nobel-laureates dataset (paper §V-A dataset
/// (2): 1069 tuples about Nobel laureates joined from Wikipedia).
struct NobelOptions {
  size_t num_laureates = 1069;
  size_t num_countries = 40;
  size_t num_cities = 200;
  size_t num_institutions = 120;
  size_t num_other_awards = 30;
  /// Appends the mutually-exclusive rule pair nobel_city_chem /
  /// nobel_country_other (targets City and Country, gated on the disjoint
  /// award classes). The pair forms a nominal interaction cycle that the
  /// stratification analyzer refutes by unification whenever the rule set
  /// leaves the Prize column stable, which makes it the benchmark workload
  /// for stratum-aware sweep elision (docs/static_analysis.md).
  bool exclusive_strata_rules = false;
  uint64_t seed = 7;
};

/// Generates the Nobel dataset: schema
///   Nobel(Name, DOB, Country, Prize, Institution, City)
/// mirroring paper Table I, with the ground-truth world graph of Fig. 1
/// (worksAt, locatedIn, isCitizenOf, wasBornIn, bornOnDate, wonPrize, ...)
/// and five curated detective rules shaped like the paper's Fig. 4:
///
///   nobel_institution : worksAt (+) vs graduatedFrom (-), evid {Name, DOB}
///   nobel_city        : worksAt.locatedIn (+) vs wasBornIn (-)
///   nobel_country     : isCitizenOf & City.locatedIn (+) vs bornInCountry (-)
///   nobel_prize       : wonPrize:chemistry award (+) vs wonPrize:other (-)
///   nobel_dob         : bornOnDate (+) vs diedOnDate (-)
///
/// The semantic-error alternatives line up with the rules' negative
/// semantics (birth city for City, alma mater for Institution, ...), which
/// is exactly the error model the paper's injector uses.
Dataset GenerateNobel(const NobelOptions& options = {});

}  // namespace detective

#endif  // DETECTIVE_DATAGEN_NOBEL_GEN_H_
