#ifndef DETECTIVE_DATAGEN_WORLD_H_
#define DETECTIVE_DATAGEN_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"

namespace detective {

/// A KB coverage/taxonomy profile (DESIGN.md substitution for the real Yago
/// and DBpedia dumps). The cleaning algorithms only see the KB through typed
/// lookups and edges, so the experimentally relevant differences between the
/// two KBs reduce to coverage and taxonomy shape:
///   - Yago: richer taxonomy, higher fact coverage → higher DR recall;
///   - DBpedia: flatter taxonomy, lower coverage → lower recall.
struct KbProfile {
  std::string name = "Yago";
  /// Probability that a ground-truth entity exists in the KB at all.
  /// Applies only to *unpopular* entities: an entity participating in at
  /// least `popular_degree` facts is always kept, because real KBs do not
  /// lose hub entities (every KB knows the Nobel Prize), they lose tail
  /// facts.
  double entity_coverage = 0.97;
  size_t popular_degree = 16;
  /// Probability that a ground-truth fact (edge) of a kept entity is kept.
  double fact_coverage = 0.92;
  /// Emit the intermediate taxonomy layers (wikicat-style classes). The
  /// flat variant keeps only the leaf classes, as DBpedia tends to.
  bool rich_taxonomy = true;
  uint64_t seed = 1234;
};

/// The built-in profiles used throughout the experiments.
KbProfile YagoProfile();
KbProfile DBpediaProfile();

/// Ground-truth world model: the complete, correct entity graph a dataset
/// generator produces. Both the relation (rows of labels) and the KBs
/// (subsets of facts under a KbProfile) are projections of one World, which
/// is what lets the evaluation score repairs against a consistent truth.
class World {
 public:
  /// Index into entities().
  using EntityIndex = uint32_t;

  struct Entity {
    std::string label;
    std::string cls;  // leaf class name
  };

  struct Fact {
    EntityIndex subject;
    std::string relation;
    EntityIndex object;          // meaningful when !object_is_literal
    bool object_is_literal;
    std::string literal;         // meaningful when object_is_literal
  };

  EntityIndex AddEntity(std::string label, std::string cls);
  void AddFact(EntityIndex subject, std::string relation, EntityIndex object);
  void AddLiteralFact(EntityIndex subject, std::string relation, std::string literal);
  /// Declares `sub` a subclass of `super` in the rich taxonomy.
  void AddSubclass(std::string sub, std::string super);

  const std::vector<Entity>& entities() const { return entities_; }
  const std::vector<Fact>& facts() const { return facts_; }
  const std::string& label(EntityIndex e) const { return entities_[e].label; }

  /// Projects the world into a KnowledgeBase under `profile`: entities are
  /// kept with entity_coverage, facts of kept entities with fact_coverage;
  /// the rich taxonomy layers are included only for rich_taxonomy profiles.
  /// Entities listed in `always_keep` are exempt from the coverage coin flip
  /// (used for key-column entities whose presence gates evaluation).
  KnowledgeBase ToKb(const KbProfile& profile,
                     const std::vector<EntityIndex>& always_keep = {}) const;

 private:
  std::vector<Entity> entities_;
  std::vector<Fact> facts_;
  std::vector<std::pair<std::string, std::string>> taxonomy_;  // (sub, super)
};

}  // namespace detective

#endif  // DETECTIVE_DATAGEN_WORLD_H_
