#ifndef DETECTIVE_DATAGEN_ERROR_INJECTOR_H_
#define DETECTIVE_DATAGEN_ERROR_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "relation/relation.h"

namespace detective {

/// The two noise types of the paper's experiments (§V-A):
///   "(i) typos; (ii) semantic errors: the value is replaced with a
///    different one from a semantically related attribute."
enum class ErrorType : uint8_t { kTypo, kSemantic };

/// Record of one injected error — the evaluation's ground truth.
struct ErrorRecord {
  size_t row;
  ColumnIndex column;
  std::string clean_value;
  std::string dirty_value;
  ErrorType type;
};

struct ErrorSpec {
  /// Fraction of data cells to dirty (the paper's e%).
  double error_rate = 0.10;
  /// Fraction of errors that are typos; the rest are semantic errors
  /// (paper Fig. 7 sweeps this from 0% to 100%).
  double typo_fraction = 0.5;
  uint64_t seed = 99;
};

/// Per-cell semantic alternatives: alternatives[row][column] lists values
/// that are wrong but semantically plausible for that cell (e.g. the birth
/// city for a work-city column). Dataset generators produce this alongside
/// the clean relation. Cells without alternatives fall back to a typo.
using SemanticAlternatives = std::vector<std::vector<std::vector<std::string>>>;

/// Applies 1–2 random character edits (insert/delete/substitute) that are
/// guaranteed to change the string. Exposed for tests and ad-hoc noise.
std::string MakeTypo(const std::string& value, Rng* rng);

/// Dirties `relation` in place: picks round(error_rate * num_cells) distinct
/// cells uniformly at random, then flips a typo_fraction-weighted coin per
/// cell for the error type. Returns the injected errors (sorted by row,
/// column). Deterministic in ErrorSpec::seed.
std::vector<ErrorRecord> InjectErrors(Relation* relation, const ErrorSpec& spec,
                                      const SemanticAlternatives& alternatives);

/// Convenience overload without semantic alternatives (typos only).
std::vector<ErrorRecord> InjectErrors(Relation* relation, const ErrorSpec& spec);

}  // namespace detective

#endif  // DETECTIVE_DATAGEN_ERROR_INJECTOR_H_
