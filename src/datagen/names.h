#ifndef DETECTIVE_DATAGEN_NAMES_H_
#define DETECTIVE_DATAGEN_NAMES_H_

#include <string>

#include "common/random.h"

namespace detective {

/// Deterministic synthetic label generators. Labels are pronounceable
/// letter strings (syllable-concatenated) so that edit-distance matching
/// and typo injection behave like they do on real entity names.
class NameGenerator {
 public:
  explicit NameGenerator(Rng* rng) : rng_(rng) {}

  /// "Baro Keslin" — capitalized given + family name.
  std::string PersonName();

  /// "Sandoria", "Velgrad" — one capitalized word.
  std::string PlaceName();

  /// "University of Sandoria" / "Velgrad Institute of Technology".
  std::string InstitutionName(const std::string& city);

  /// "Kesl Prize in Chemistry" and similar award names.
  std::string AwardName(const std::string& field);

  /// ISO-ish date string "1937-12-31" within [year_lo, year_hi].
  std::string DateString(int year_lo, int year_hi);

  /// Zero-padded 5-digit code, e.g. "04712".
  std::string ZipCode();

 private:
  std::string Word(size_t min_syllables, size_t max_syllables);
  std::string Capitalized(size_t min_syllables, size_t max_syllables);

  Rng* rng_;  // not owned
};

}  // namespace detective

#endif  // DETECTIVE_DATAGEN_NAMES_H_
