#ifndef DETECTIVE_DATAGEN_WEBTABLES_GEN_H_
#define DETECTIVE_DATAGEN_WEBTABLES_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/matching_graph.h"
#include "core/rule.h"
#include "datagen/error_injector.h"
#include "datagen/world.h"
#include "relation/relation.h"

namespace detective {

/// One synthetic Web table (paper §V-A dataset (1): 37 tables, ~44 tuples
/// each, "dirty originally" — so the generator injects the noise itself and
/// the errors come with the table).
struct WebTable {
  std::string name;
  Relation clean;   // ground truth for evaluation
  Relation dirty;   // the table as "found on the web"
  std::vector<ErrorRecord> errors;
  SemanticAlternatives alternatives;
  std::vector<DetectiveRule> rules;
  SchemaMatchingGraph katara_pattern;
  ColumnIndex key_column = 0;
};

/// The whole corpus shares one world / KB, like real Web tables share Yago.
struct WebTablesCorpus {
  World world;
  std::vector<WebTable> tables;
  /// Key entities of all tables, pinned into KB projections.
  std::vector<World::EntityIndex> key_entities;

  size_t total_rules() const;
};

struct WebTablesOptions {
  size_t num_tables = 37;
  size_t avg_tuples = 44;     // actual size uniform in [avg-14, avg+14]
  double error_rate = 0.10;   // the tables are born dirty at this rate
  double typo_fraction = 0.5;
  uint64_t seed = 23;
};

/// Generates the corpus: tables cycle through 13 domains (country→capital,
/// book→author, film→director, ...), each pairing a key column with one or
/// two attribute columns whose positive relationship has a confusable
/// negative counterpart (capital vs largest city, author vs translator, …).
/// The first 13 tables carry three columns (two rules each), the rest two
/// columns (one rule each) — 50 rules over 37 tables, as in the paper.
WebTablesCorpus GenerateWebTables(const WebTablesOptions& options = {});

}  // namespace detective

#endif  // DETECTIVE_DATAGEN_WEBTABLES_GEN_H_
