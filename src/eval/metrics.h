#ifndef DETECTIVE_EVAL_METRICS_H_
#define DETECTIVE_EVAL_METRICS_H_

#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "relation/relation.h"

namespace detective {

/// Cell-level repair quality (paper §V-A "Measuring Quality"):
///   precision = correctly repaired cells / all repaired cells
///   recall    = correctly repaired cells / all erroneous cells
///   F-measure = harmonic mean.
/// A cell repaired to the llun marker counts 0.5 when the cell was indeed
/// erroneous (Llunatic's "metric 0.5"). #-POS counts positively marked
/// cells (Table III's annotation metric).
struct RepairQuality {
  size_t eligible_rows = 0;
  size_t errors = 0;            // dirty cells within eligible rows
  size_t repairs = 0;           // cells the method changed
  size_t exact_correct = 0;     // repairs restoring the clean value
  double weighted_correct = 0;  // exact_correct + 0.5 per justified llun
  size_t pos_marks = 0;         // cells marked positive (#-POS)
  size_t pos_marks_correct = 0; // marked cells whose value is actually clean

  double precision() const {
    return repairs == 0 ? 1.0 : weighted_correct / static_cast<double>(repairs);
  }
  double recall() const {
    return errors == 0 ? 1.0 : weighted_correct / static_cast<double>(errors);
  }
  double f_measure() const {
    double p = precision();
    double r = recall();
    return p + r == 0 ? 0 : 2 * p * r / (p + r);
  }
  /// Fraction of positive marks that are justified (annotation precision).
  double annotation_precision() const {
    return pos_marks == 0
               ? 1.0
               : static_cast<double>(pos_marks_correct) / static_cast<double>(pos_marks);
  }

  std::string ToString() const;
};

/// Rows whose (clean) key value has a corresponding entity in the KB — the
/// paper's evaluation scope ("we mainly evaluated the tuples whose value in
/// key attribute have corresponding entities in KBs").
std::vector<char> EligibleRows(const Relation& clean, const KnowledgeBase& kb,
                               ColumnIndex key_column);

/// Scores `repaired` against the ground truth, restricted to eligible rows
/// (pass empty to score everything). The three relations must share schema
/// and row order.
RepairQuality EvaluateRepair(const Relation& clean, const Relation& dirty,
                             const Relation& repaired,
                             const std::vector<char>& eligible = {});

/// Merges per-table qualities (for the WebTables corpus) by summing counts.
RepairQuality MergeQualities(const std::vector<RepairQuality>& parts);

}  // namespace detective

#endif  // DETECTIVE_EVAL_METRICS_H_
