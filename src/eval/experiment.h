#ifndef DETECTIVE_EVAL_EXPERIMENT_H_
#define DETECTIVE_EVAL_EXPERIMENT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "datagen/dataset.h"
#include "eval/metrics.h"
#include "kb/knowledge_base.h"

namespace detective {

/// The competitors of the paper's evaluation (§V-A "Algorithms").
enum class Method {
  kBasicRepair,  // bRepair: Algorithm 1, no indexes/order/sharing
  kFastRepair,   // fRepair: Algorithm 2
  kKatara,       // KB-powered baseline (Exp-1)
  kLlunatic,     // IC-based heuristic repair (Exp-2)
  kConstantCfd,  // constant CFDs mined from ground truth (Exp-2)
};

std::string_view MethodName(Method method);

struct ExperimentResult {
  Relation repaired;
  RepairQuality quality;
  double seconds = 0;  // wall-clock repair time (excludes KB generation)
};

/// Runs one method over one dirtied instance of `dataset`.
///
/// `kb` is the KB projection to clean against (ignored by the IC methods).
/// `eligible` restricts the quality metrics (see EligibleRows); pass empty
/// to score all rows. Constant CFDs are mined from dataset.clean, matching
/// the paper's setup.
Result<ExperimentResult> RunMethod(Method method, const Dataset& dataset,
                                   const KnowledgeBase* kb, const Relation& dirty,
                                   const std::vector<char>& eligible);

/// Monotonic wall-clock seconds (benchmark harness timer).
double NowSeconds();

}  // namespace detective

#endif  // DETECTIVE_EVAL_EXPERIMENT_H_
