#ifndef DETECTIVE_EVAL_REPORT_H_
#define DETECTIVE_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "eval/metrics.h"
#include "relation/relation.h"

namespace detective {

/// One cell-level difference between two same-schema relations.
struct CellDiff {
  size_t row;
  ColumnIndex column;
  std::string before;
  std::string after;

  friend bool operator==(const CellDiff&, const CellDiff&) = default;
};

/// All cells where `after` differs from `before`, ordered by (row, column).
/// The relations must share schema and row order (checked).
std::vector<CellDiff> DiffRelations(const Relation& before, const Relation& after);

/// Human-readable markdown report of a cleaning run: the quality block, a
/// repairs table (capped at `max_rows` diff rows, with a truncation note),
/// and the per-column repair tally. `column_names` come from the schema.
std::string MarkdownReport(const Schema& schema, const RepairQuality& quality,
                           const std::vector<CellDiff>& repairs,
                           size_t max_rows = 100);

}  // namespace detective

#endif  // DETECTIVE_EVAL_REPORT_H_
