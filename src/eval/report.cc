#include "eval/report.h"

#include <map>
#include <sstream>

#include "common/logging.h"

namespace detective {

std::vector<CellDiff> DiffRelations(const Relation& before, const Relation& after) {
  DETECTIVE_CHECK(before.schema() == after.schema());
  DETECTIVE_CHECK_EQ(before.num_tuples(), after.num_tuples());
  std::vector<CellDiff> diffs;
  const size_t columns = before.schema().num_columns();
  for (size_t row = 0; row < before.num_tuples(); ++row) {
    for (ColumnIndex c = 0; c < columns; ++c) {
      std::string_view old_value = before.value(row, c);
      std::string_view new_value = after.value(row, c);
      if (old_value != new_value) {
        diffs.push_back({row, c, std::string(old_value), std::string(new_value)});
      }
    }
  }
  return diffs;
}

namespace {

/// Escapes the characters that would break a markdown table cell.
std::string EscapeCell(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '|') {
      out += "\\|";
    } else if (c == '\n') {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string MarkdownReport(const Schema& schema, const RepairQuality& quality,
                           const std::vector<CellDiff>& repairs, size_t max_rows) {
  std::ostringstream out;
  out << "# Cleaning report\n\n";
  out << "## Quality\n\n";
  out << "- precision: " << quality.precision() << "\n";
  out << "- recall: " << quality.recall() << "\n";
  out << "- F-measure: " << quality.f_measure() << "\n";
  out << "- repairs: " << quality.repairs << " (" << quality.exact_correct
      << " exactly correct)\n";
  out << "- errors in scope: " << quality.errors << "\n";
  out << "- cells marked correct (#-POS): " << quality.pos_marks << "\n\n";

  out << "## Repairs by column\n\n";
  std::map<ColumnIndex, size_t> per_column;
  for (const CellDiff& diff : repairs) ++per_column[diff.column];
  if (per_column.empty()) {
    out << "(none)\n\n";
  } else {
    out << "| column | repairs |\n|---|---|\n";
    for (const auto& [column, count] : per_column) {
      out << "| " << EscapeCell(schema.column_name(column)) << " | " << count
          << " |\n";
    }
    out << "\n";
  }

  out << "## Repaired cells\n\n";
  if (repairs.empty()) {
    out << "(none)\n";
    return out.str();
  }
  out << "| row | column | before | after |\n|---|---|---|---|\n";
  size_t shown = 0;
  for (const CellDiff& diff : repairs) {
    if (shown == max_rows) break;
    out << "| " << diff.row << " | " << EscapeCell(schema.column_name(diff.column))
        << " | " << EscapeCell(diff.before) << " | " << EscapeCell(diff.after)
        << " |\n";
    ++shown;
  }
  if (repairs.size() > max_rows) {
    out << "\n(" << repairs.size() - max_rows << " more repairs truncated)\n";
  }
  return out.str();
}

}  // namespace detective
