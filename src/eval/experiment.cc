#include "eval/experiment.h"

#include <chrono>

#include "baselines/cfd.h"
#include "baselines/katara.h"
#include "baselines/llunatic.h"
#include "core/repair.h"

namespace detective {

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kBasicRepair:
      return "bRepair";
    case Method::kFastRepair:
      return "fRepair";
    case Method::kKatara:
      return "KATARA";
    case Method::kLlunatic:
      return "Llunatic";
    case Method::kConstantCfd:
      return "constant CFDs";
  }
  return "?";
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<ExperimentResult> RunMethod(Method method, const Dataset& dataset,
                                   const KnowledgeBase* kb, const Relation& dirty,
                                   const std::vector<char>& eligible) {
  ExperimentResult result;
  result.repaired = dirty;

  switch (method) {
    case Method::kBasicRepair: {
      if (kb == nullptr) return Status::InvalidArgument("bRepair needs a KB");
      RepairOptions options;
      // The basic algorithm: no signature indexes, no shared computation.
      options.matcher.use_signature_index = false;
      options.matcher.use_value_memo = false;
      BasicRepairer repairer(*kb, dataset.clean.schema(), dataset.rules, options);
      RETURN_NOT_OK(repairer.Init());
      double start = NowSeconds();
      repairer.RepairRelation(&result.repaired);
      result.seconds = NowSeconds() - start;
      break;
    }
    case Method::kFastRepair: {
      if (kb == nullptr) return Status::InvalidArgument("fRepair needs a KB");
      RepairOptions options;  // all optimizations on by default
      FastRepairer repairer(*kb, dataset.clean.schema(), dataset.rules, options);
      RETURN_NOT_OK(repairer.Init());
      double start = NowSeconds();
      repairer.RepairRelation(&result.repaired);
      result.seconds = NowSeconds() - start;
      break;
    }
    case Method::kKatara: {
      if (kb == nullptr) return Status::InvalidArgument("KATARA needs a KB");
      Katara katara(*kb, dataset.katara_pattern);
      RETURN_NOT_OK(katara.Init(dataset.clean.schema()));
      double start = NowSeconds();
      katara.CleanRelation(&result.repaired);
      result.seconds = NowSeconds() - start;
      break;
    }
    case Method::kLlunatic: {
      LlunaticRepairer repairer(dataset.fds);
      double start = NowSeconds();
      RETURN_NOT_OK(repairer.Repair(&result.repaired));
      result.seconds = NowSeconds() - start;
      break;
    }
    case Method::kConstantCfd: {
      ASSIGN_OR_RETURN(std::vector<ConstantCfd> cfds,
                       MineConstantCfds(dataset.clean, dataset.fds));
      CfdRepairer repairer(std::move(cfds));
      RETURN_NOT_OK(repairer.Init(dataset.clean.schema()));
      double start = NowSeconds();
      repairer.RepairRelation(&result.repaired);
      result.seconds = NowSeconds() - start;
      break;
    }
  }

  result.quality = EvaluateRepair(dataset.clean, dirty, result.repaired, eligible);
  return result;
}

}  // namespace detective
