#include "eval/metrics.h"

#include <cstdio>

#include "baselines/llunatic.h"
#include "common/logging.h"

namespace detective {

std::string RepairQuality::ToString() const {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "P=%.3f R=%.3f F=%.3f (repairs=%zu/%zu errors, #-POS=%zu, "
                "annotationP=%.3f)",
                precision(), recall(), f_measure(), repairs, errors, pos_marks,
                annotation_precision());
  return buffer;
}

std::vector<char> EligibleRows(const Relation& clean, const KnowledgeBase& kb,
                               ColumnIndex key_column) {
  std::vector<char> eligible(clean.num_tuples(), 0);
  for (size_t row = 0; row < clean.num_tuples(); ++row) {
    for (ItemId item : kb.ItemsWithLabel(clean.value(row, key_column))) {
      if (!kb.IsLiteral(item)) {
        eligible[row] = 1;
        break;
      }
    }
  }
  return eligible;
}

RepairQuality EvaluateRepair(const Relation& clean, const Relation& dirty,
                             const Relation& repaired,
                             const std::vector<char>& eligible) {
  DETECTIVE_CHECK_EQ(clean.num_tuples(), dirty.num_tuples());
  DETECTIVE_CHECK_EQ(clean.num_tuples(), repaired.num_tuples());
  DETECTIVE_CHECK(clean.schema() == repaired.schema());

  RepairQuality quality;
  const size_t num_columns = clean.schema().num_columns();
  for (size_t row = 0; row < clean.num_tuples(); ++row) {
    if (!eligible.empty() && !eligible[row]) continue;
    ++quality.eligible_rows;
    for (ColumnIndex c = 0; c < num_columns; ++c) {
      std::string_view truth = clean.value(row, c);
      std::string_view before = dirty.value(row, c);
      std::string_view after = repaired.value(row, c);
      const bool was_error = before != truth;
      if (was_error) ++quality.errors;
      if (after != before) {
        ++quality.repairs;
        if (after == truth) {
          ++quality.exact_correct;
          quality.weighted_correct += 1.0;
        } else if (after == kLlunValue && was_error) {
          // Metric 0.5: a llun over a genuinely dirty cell is a partially
          // correct change.
          quality.weighted_correct += 0.5;
        }
      }
      if (repaired.IsPositive(row, c)) {
        ++quality.pos_marks;
        if (after == truth) ++quality.pos_marks_correct;
      }
    }
  }
  return quality;
}

RepairQuality MergeQualities(const std::vector<RepairQuality>& parts) {
  RepairQuality total;
  for (const RepairQuality& part : parts) {
    total.eligible_rows += part.eligible_rows;
    total.errors += part.errors;
    total.repairs += part.repairs;
    total.exact_correct += part.exact_correct;
    total.weighted_correct += part.weighted_correct;
    total.pos_marks += part.pos_marks;
    total.pos_marks_correct += part.pos_marks_correct;
  }
  return total;
}

}  // namespace detective
