#ifndef DETECTIVE_COMMON_TARJAN_H_
#define DETECTIVE_COMMON_TARJAN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace detective {

/// Iterative Tarjan SCC over an adjacency-list graph. Components come out in
/// reverse topological order, which Run() renumbers so that component 0 has
/// no predecessors — i.e. the component ids form a topological order of the
/// condensation. Shared by the repairer's RuleGraph (check-order blocks) and
/// the stratification analyzer (strata).
class TarjanScc {
 public:
  explicit TarjanScc(const std::vector<std::vector<uint32_t>>& adjacency)
      : adjacency_(adjacency),
        index_(adjacency.size(), kUnvisited),
        lowlink_(adjacency.size(), 0),
        on_stack_(adjacency.size(), 0),
        component_(adjacency.size(), 0) {}

  void Run() {
    for (uint32_t v = 0; v < adjacency_.size(); ++v) {
      if (index_[v] == kUnvisited) Visit(v);
    }
    // Tarjan numbers components in reverse topological order; flip so the
    // earliest component comes first.
    for (uint32_t& c : component_) c = static_cast<uint32_t>(count_ - 1 - c);
  }

  const std::vector<uint32_t>& component() const { return component_; }
  size_t count() const { return count_; }

 private:
  static constexpr uint32_t kUnvisited = static_cast<uint32_t>(-1);

  void Visit(uint32_t root) {
    struct Frame {
      uint32_t vertex;
      size_t next_edge;
    };
    std::vector<Frame> call_stack{{root, 0}};
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      uint32_t v = frame.vertex;
      if (frame.next_edge == 0) {
        index_[v] = lowlink_[v] = next_index_++;
        stack_.push_back(v);
        on_stack_[v] = 1;
      }
      bool descended = false;
      while (frame.next_edge < adjacency_[v].size()) {
        uint32_t w = adjacency_[v][frame.next_edge++];
        if (index_[w] == kUnvisited) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack_[w]) lowlink_[v] = std::min(lowlink_[v], index_[w]);
      }
      if (descended) continue;
      if (lowlink_[v] == index_[v]) {
        while (true) {
          uint32_t w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = 0;
          component_[w] = static_cast<uint32_t>(count_);
          if (w == v) break;
        }
        ++count_;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        uint32_t parent = call_stack.back().vertex;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
      }
    }
  }

  const std::vector<std::vector<uint32_t>>& adjacency_;
  std::vector<uint32_t> index_;
  std::vector<uint32_t> lowlink_;
  std::vector<char> on_stack_;
  std::vector<uint32_t> component_;
  std::vector<uint32_t> stack_;
  uint32_t next_index_ = 0;
  size_t count_ = 0;
};

}  // namespace detective

#endif  // DETECTIVE_COMMON_TARJAN_H_
