#ifndef DETECTIVE_COMMON_LOGGING_H_
#define DETECTIVE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace detective {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Minimum level that is emitted; defaults to kInfo. Not thread-safe to
/// mutate concurrently with logging (set it once at startup).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line: accumulates pieces, emits on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a disabled log statement without evaluating the stream.
struct LogVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace detective

#define DETECTIVE_LOG_INTERNAL(level) \
  ::detective::internal::LogMessage(level, __FILE__, __LINE__)

#define LOG_DEBUG() DETECTIVE_LOG_INTERNAL(::detective::LogLevel::kDebug)
#define LOG_INFO() DETECTIVE_LOG_INTERNAL(::detective::LogLevel::kInfo)
#define LOG_WARNING() DETECTIVE_LOG_INTERNAL(::detective::LogLevel::kWarning)
#define LOG_ERROR() DETECTIVE_LOG_INTERNAL(::detective::LogLevel::kError)
#define LOG_FATAL() DETECTIVE_LOG_INTERNAL(::detective::LogLevel::kFatal)

/// Always-on invariant check; aborts with the streamed message on failure.
#define DETECTIVE_CHECK(condition)                                      \
  (condition) ? (void)0                                                 \
              : ::detective::internal::LogVoidify() &                   \
                    DETECTIVE_LOG_INTERNAL(::detective::LogLevel::kFatal) \
                        << "Check failed: " #condition " "

#define DETECTIVE_CHECK_EQ(a, b) DETECTIVE_CHECK((a) == (b))
#define DETECTIVE_CHECK_NE(a, b) DETECTIVE_CHECK((a) != (b))
#define DETECTIVE_CHECK_LT(a, b) DETECTIVE_CHECK((a) < (b))
#define DETECTIVE_CHECK_LE(a, b) DETECTIVE_CHECK((a) <= (b))
#define DETECTIVE_CHECK_GT(a, b) DETECTIVE_CHECK((a) > (b))
#define DETECTIVE_CHECK_GE(a, b) DETECTIVE_CHECK((a) >= (b))

#ifdef NDEBUG
#define DETECTIVE_DCHECK(condition) \
  while (false) DETECTIVE_CHECK(condition)
#else
#define DETECTIVE_DCHECK(condition) DETECTIVE_CHECK(condition)
#endif

#endif  // DETECTIVE_COMMON_LOGGING_H_
