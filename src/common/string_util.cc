#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace detective {

namespace {
bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      return pieces;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitAndTrim(std::string_view input, char delimiter) {
  std::vector<std::string> pieces = Split(input, delimiter);
  for (std::string& piece : pieces) piece = Trim(piece);
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(pieces[i]);
  }
  return result;
}

std::string_view TrimView(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && IsSpace(input[begin])) ++begin;
  while (end > begin && IsSpace(input[end - 1])) --end;
  return input.substr(begin, end - begin);
}

std::string Trim(std::string_view input) { return std::string(TrimView(input)); }

std::string ToLower(std::string_view input) {
  std::string result(input);
  for (char& c : result) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return result;
}

std::string ToUpper(std::string_view input) {
  std::string result(input);
  for (char& c : result) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string NormalizeWhitespace(std::string_view input) {
  std::string result;
  result.reserve(input.size());
  bool pending_space = false;
  for (char c : TrimView(input)) {
    if (IsSpace(c)) {
      pending_space = true;
      continue;
    }
    if (pending_space && !result.empty()) result.push_back(' ');
    pending_space = false;
    result.push_back(c);
  }
  return result;
}

std::string ReplaceAll(std::string_view input, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(input);
  std::string result;
  result.reserve(input.size());
  size_t start = 0;
  while (true) {
    size_t pos = input.find(from, start);
    if (pos == std::string_view::npos) {
      result.append(input.substr(start));
      return result;
    }
    result.append(input.substr(start, pos - start));
    result.append(to);
    start = pos + from.size();
  }
}

void AppendJsonString(std::string_view text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

bool ParseUint64(std::string_view text, uint64_t* value) {
  if (text.empty()) return false;
  uint64_t accumulated = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (accumulated > (std::numeric_limits<uint64_t>::max() - digit) / 10) return false;
    accumulated = accumulated * 10 + digit;
  }
  *value = accumulated;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* value) {
  if (text.empty()) return false;
  bool negative = false;
  if (text.front() == '-' || text.front() == '+') {
    negative = text.front() == '-';
    text.remove_prefix(1);
  }
  uint64_t magnitude = 0;
  if (!ParseUint64(text, &magnitude)) return false;
  if (negative) {
    if (magnitude > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1) {
      return false;
    }
    *value = magnitude == static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1
                 ? std::numeric_limits<int64_t>::min()
                 : -static_cast<int64_t>(magnitude);
  } else {
    if (magnitude > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      return false;
    }
    *value = static_cast<int64_t>(magnitude);
  }
  return true;
}

bool ParseDouble(std::string_view text, double* value) {
  if (text.empty()) return false;
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *value = parsed;
  return true;
}

std::string_view StringArena::Intern(std::string_view s) {
  if (s.size() > block_remaining_) {
    // Oversized strings get a dedicated block so regular blocks stay dense.
    const size_t block = std::max(kBlockBytes, s.size());
    blocks_.push_back(std::make_unique<char[]>(block));
    cursor_ = blocks_.back().get();
    block_remaining_ = block;
  }
  char* dest = cursor_;
  std::memcpy(dest, s.data(), s.size());
  cursor_ += s.size();
  block_remaining_ -= s.size();
  bytes_used_ += s.size();
  return {dest, s.size()};
}

}  // namespace detective
