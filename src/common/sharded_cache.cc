#include "common/sharded_cache.h"

#include <cstdio>

namespace detective {

std::string ShardedCacheStats::ToString() const {
  const uint64_t lookups = hits + misses;
  const double hit_rate =
      lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "hits=%llu misses=%llu inserts=%llu rejected=%llu hit_rate=%.3f",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(inserts),
                static_cast<unsigned long long>(rejected), hit_rate);
  return buffer;
}

}  // namespace detective
