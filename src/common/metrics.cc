#include "common/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/json_util.h"
#include "common/string_util.h"

namespace detective::metrics {

// ---- MetricsSnapshot ---------------------------------------------------------

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

MetricsSnapshot::Timer MetricsSnapshot::timer(std::string_view name) const {
  auto it = timers.find(std::string(name));
  return it == timers.end() ? Timer{} : it->second;
}

uint64_t MetricsSnapshot::Timer::PercentileNs(double p) const {
  uint64_t recorded = 0;
  for (uint64_t b : buckets) recorded += b;
  if (recorded == 0) return 0;  // no histogram data (legacy source or empty)
  p = std::clamp(p, 0.0, 1.0);
  // 1-based rank of the quantile scope among the recorded ones.
  auto rank = static_cast<uint64_t>(std::ceil(p * static_cast<double>(recorded)));
  rank = std::clamp<uint64_t>(rank, 1, recorded);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return HistogramBucketUpperNs(i);
  }
  return HistogramBucketUpperNs(buckets.size() - 1);
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += ": ";
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"timers\": {";
  first = true;
  for (const auto& [name, timer] : timers) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += ": {\"count\": ";
    out += std::to_string(timer.count);
    out += ", \"total_ns\": ";
    out += std::to_string(timer.total_ns);
    out += ", \"p50_ns\": ";
    out += std::to_string(timer.p50_ns());
    out += ", \"p95_ns\": ";
    out += std::to_string(timer.p95_ns());
    out += ", \"p99_ns\": ";
    out += std::to_string(timer.p99_ns());
    out += ", \"buckets\": {";
    bool first_bucket = true;
    for (size_t i = 0; i < timer.buckets.size(); ++i) {
      if (timer.buckets[i] == 0) continue;
      out += first_bucket ? "" : ", ";
      first_bucket = false;
      out += "\"" + std::to_string(i) + "\": " + std::to_string(timer.buckets[i]);
    }
    out += "}}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

Result<MetricsSnapshot> MetricsSnapshot::FromJson(std::string_view json) {
  MetricsSnapshot snapshot;
  JsonCursor cursor(json);
  RETURN_NOT_OK(cursor.Expect('{'));

  bool saw_counters = false;
  bool saw_timers = false;
  if (!cursor.TryConsume('}')) {
    do {
      ASSIGN_OR_RETURN(std::string section, cursor.TakeString());
      RETURN_NOT_OK(cursor.Expect(':'));
      RETURN_NOT_OK(cursor.Expect('{'));
      if (section == "counters") {
        if (saw_counters) {
          return Status::InvalidArgument("metrics JSON: duplicate \"counters\"");
        }
        saw_counters = true;
        if (!cursor.TryConsume('}')) {
          do {
            ASSIGN_OR_RETURN(std::string name, cursor.TakeString());
            RETURN_NOT_OK(cursor.Expect(':'));
            ASSIGN_OR_RETURN(uint64_t value, cursor.TakeUint());
            snapshot.counters[std::move(name)] = value;
          } while (cursor.TryConsume(','));
          RETURN_NOT_OK(cursor.Expect('}'));
        }
      } else if (section == "timers") {
        if (saw_timers) {
          return Status::InvalidArgument("metrics JSON: duplicate \"timers\"");
        }
        saw_timers = true;
        if (!cursor.TryConsume('}')) {
          do {
            ASSIGN_OR_RETURN(std::string name, cursor.TakeString());
            RETURN_NOT_OK(cursor.Expect(':'));
            RETURN_NOT_OK(cursor.Expect('{'));
            MetricsSnapshot::Timer timer;
            do {
              ASSIGN_OR_RETURN(std::string field, cursor.TakeString());
              RETURN_NOT_OK(cursor.Expect(':'));
              if (field == "buckets") {
                RETURN_NOT_OK(cursor.Expect('{'));
                if (!cursor.TryConsume('}')) {
                  do {
                    ASSIGN_OR_RETURN(std::string index_text, cursor.TakeString());
                    JsonCursor index_cursor(index_text);
                    ASSIGN_OR_RETURN(uint64_t index, index_cursor.TakeUint());
                    RETURN_NOT_OK(index_cursor.ExpectEnd());
                    if (index >= kNumHistogramBuckets) {
                      return Status::InvalidArgument(
                          "metrics JSON: bucket index out of range: ", index_text);
                    }
                    RETURN_NOT_OK(cursor.Expect(':'));
                    ASSIGN_OR_RETURN(uint64_t bucket_count, cursor.TakeUint());
                    timer.buckets[index] = bucket_count;
                  } while (cursor.TryConsume(','));
                  RETURN_NOT_OK(cursor.Expect('}'));
                }
                continue;
              }
              ASSIGN_OR_RETURN(uint64_t value, cursor.TakeUint());
              if (field == "count") {
                timer.count = value;
              } else if (field == "total_ns") {
                timer.total_ns = value;
              } else if (field == "p50_ns" || field == "p95_ns" ||
                         field == "p99_ns") {
                // Derived from `buckets` at serialization time; accepted for
                // round-trip compatibility but not stored.
              } else {
                return Status::InvalidArgument("metrics JSON: unknown timer field \"",
                                               field, "\"");
              }
            } while (cursor.TryConsume(','));
            RETURN_NOT_OK(cursor.Expect('}'));
            snapshot.timers[std::move(name)] = timer;
          } while (cursor.TryConsume(','));
          RETURN_NOT_OK(cursor.Expect('}'));
        }
      } else {
        return Status::InvalidArgument("metrics JSON: unknown section \"", section,
                                       "\"");
      }
    } while (cursor.TryConsume(','));
    RETURN_NOT_OK(cursor.Expect('}'));
  }
  RETURN_NOT_OK(cursor.ExpectEnd());
  return snapshot;
}

// ---- Shard -------------------------------------------------------------------

void Shard::AddCounter(uint32_t id, uint64_t n) {
  if (id >= counters_.size()) EnsureCounter(id);
  counters_[id].fetch_add(n, std::memory_order_relaxed);
}

void Shard::AddTimer(uint32_t id, uint64_t ns) {
  if (id >= timers_.size()) EnsureTimer(id);
  TimerCell& cell = timers_[id];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.total_ns.fetch_add(ns, std::memory_order_relaxed);
  cell.buckets[HistogramBucket(ns)].fetch_add(1, std::memory_order_relaxed);
}

void Shard::EnsureCounter(uint32_t id) {
  // Growth is structural, so it synchronizes with Snapshot()/Reset() through
  // the registry mutex; the deque keeps existing cell addresses stable.
  std::lock_guard<std::mutex> lock(Registry::Global().mutex_);
  while (counters_.size() <= id) counters_.emplace_back(0);
}

void Shard::EnsureTimer(uint32_t id) {
  std::lock_guard<std::mutex> lock(Registry::Global().mutex_);
  while (timers_.size() <= id) timers_.emplace_back();
}

// ---- Registry ----------------------------------------------------------------

Registry& Registry::Global() {
  // Leaked on purpose: thread_local shard destructors may run after static
  // destructors would have torn a non-leaked registry down.
  static Registry* global = new Registry();
  return *global;
}

uint32_t Registry::CounterId(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(counter_names_.size());
  counter_names_.emplace_back(name);
  counter_ids_.emplace(counter_names_.back(), id);
  return id;
}

uint32_t Registry::TimerId(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = timer_ids_.find(name);
  if (it != timer_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(timer_names_.size());
  timer_names_.emplace_back(name);
  timer_ids_.emplace(timer_names_.back(), id);
  return id;
}

void Registry::MergeShardLocked(const Shard& shard, MetricsSnapshot* out) const {
  for (uint32_t id = 0; id < shard.counters_.size(); ++id) {
    uint64_t value = shard.counters_[id].load(std::memory_order_relaxed);
    if (value != 0) out->counters[counter_names_[id]] += value;
  }
  for (uint32_t id = 0; id < shard.timers_.size(); ++id) {
    const Shard::TimerCell& cell = shard.timers_[id];
    uint64_t count = cell.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    MetricsSnapshot::Timer& timer = out->timers[timer_names_[id]];
    timer.count += count;
    timer.total_ns += cell.total_ns.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kNumHistogramBuckets; ++b) {
      timer.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
}

MetricsSnapshot Registry::Snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out = retired_;
  for (const Shard* shard : shards_) MergeShardLocked(*shard, &out);
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_ = MetricsSnapshot{};
  for (Shard* shard : shards_) {
    for (auto& cell : shard->counters_) cell.store(0, std::memory_order_relaxed);
    for (auto& cell : shard->timers_) {
      cell.count.store(0, std::memory_order_relaxed);
      cell.total_ns.store(0, std::memory_order_relaxed);
      for (auto& bucket : cell.buckets) bucket.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsSnapshot Registry::SnapshotAndReset() {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out = std::move(retired_);
  retired_ = MetricsSnapshot{};
  for (Shard* shard : shards_) {
    // Drain, don't read-then-zero: exchange(0) hands each recorded value to
    // exactly one epoch even while the owning thread keeps writing.
    for (uint32_t id = 0; id < shard->counters_.size(); ++id) {
      uint64_t value = shard->counters_[id].exchange(0, std::memory_order_relaxed);
      if (value != 0) out.counters[counter_names_[id]] += value;
    }
    for (uint32_t id = 0; id < shard->timers_.size(); ++id) {
      Shard::TimerCell& cell = shard->timers_[id];
      uint64_t count = cell.count.exchange(0, std::memory_order_relaxed);
      uint64_t total_ns = cell.total_ns.exchange(0, std::memory_order_relaxed);
      std::array<uint64_t, kNumHistogramBuckets> buckets;
      bool any_bucket = false;
      for (size_t b = 0; b < kNumHistogramBuckets; ++b) {
        buckets[b] = cell.buckets[b].exchange(0, std::memory_order_relaxed);
        any_bucket = any_bucket || buckets[b] != 0;
      }
      if (count == 0 && total_ns == 0 && !any_bucket) continue;
      MetricsSnapshot::Timer& timer = out.timers[timer_names_[id]];
      timer.count += count;
      timer.total_ns += total_ns;
      for (size_t b = 0; b < kNumHistogramBuckets; ++b) timer.buckets[b] += buckets[b];
    }
  }
  return out;
}

size_t Registry::num_counters() {
  std::lock_guard<std::mutex> lock(mutex_);
  return counter_names_.size();
}

size_t Registry::num_timers() {
  std::lock_guard<std::mutex> lock(mutex_);
  return timer_names_.size();
}

std::vector<std::string> Registry::CounterNames() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names = counter_names_;
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> Registry::TimerNames() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names = timer_names_;
  std::sort(names.begin(), names.end());
  return names;
}

void Registry::RegisterShard(Shard* shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(shard);
}

void Registry::UnregisterShard(Shard* shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  MergeShardLocked(*shard, &retired_);
  std::erase(shards_, shard);
}

// ---- ThisThreadShard ---------------------------------------------------------

namespace {

/// Owns the thread's shard; folds it into the registry's retired totals when
/// the thread exits so no recorded value is ever lost.
struct ShardHolder {
  Shard shard;
  ShardHolder() { Registry::Global().RegisterShard(&shard); }
  ~ShardHolder() { Registry::Global().UnregisterShard(&shard); }
};

}  // namespace

Shard& ThisThreadShard() {
  thread_local ShardHolder holder;
  return holder.shard;
}

}  // namespace detective::metrics
