#include "common/metrics.h"

#include <cctype>
#include <sstream>

#include "common/string_util.h"

namespace detective::metrics {

// ---- MetricsSnapshot ---------------------------------------------------------

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

MetricsSnapshot::Timer MetricsSnapshot::timer(std::string_view name) const {
  auto it = timers.find(std::string(name));
  return it == timers.end() ? Timer{} : it->second;
}

namespace {

/// Cursor over a JSON document; every Take* consumes leading whitespace.
/// Only the constructs ToJson() emits are supported — this is a schema
/// reader, not a general JSON library.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument("metrics JSON: expected '", std::string(1, c),
                                     "' at offset ", std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  bool TryConsume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> TakeString() {
    RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char escaped = text_[pos_++];
        switch (escaped) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::InvalidArgument("metrics JSON: truncated \\u escape");
            }
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return Status::InvalidArgument("metrics JSON: bad \\u escape");
              }
              value = value * 16 +
                      static_cast<unsigned>(std::isdigit(static_cast<unsigned char>(h))
                                                ? h - '0'
                                                : std::tolower(h) - 'a' + 10);
            }
            if (value > 0x7f) {
              return Status::InvalidArgument(
                  "metrics JSON: non-ASCII \\u escape unsupported");
            }
            out.push_back(static_cast<char>(value));
            break;
          }
          default:
            return Status::InvalidArgument("metrics JSON: unsupported escape '\\",
                                           std::string(1, escaped), "'");
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("metrics JSON: unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  Result<uint64_t> TakeUint() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("metrics JSON: expected integer at offset ",
                                     std::to_string(start));
    }
    uint64_t value = 0;
    for (size_t i = start; i < pos_; ++i) {
      uint64_t digit = static_cast<uint64_t>(text_[i] - '0');
      if (value > (UINT64_MAX - digit) / 10) {
        return Status::InvalidArgument("metrics JSON: integer overflow");
      }
      value = value * 10 + digit;
    }
    return value;
  }

  Status ExpectEnd() {
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("metrics JSON: trailing content at offset ",
                                     std::to_string(pos_));
    }
    return Status::OK();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += ": ";
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"timers\": {";
  first = true;
  for (const auto& [name, timer] : timers) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += ": {\"count\": ";
    out += std::to_string(timer.count);
    out += ", \"total_ns\": ";
    out += std::to_string(timer.total_ns);
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

Result<MetricsSnapshot> MetricsSnapshot::FromJson(std::string_view json) {
  MetricsSnapshot snapshot;
  JsonCursor cursor(json);
  RETURN_NOT_OK(cursor.Expect('{'));

  bool saw_counters = false;
  bool saw_timers = false;
  if (!cursor.TryConsume('}')) {
    do {
      ASSIGN_OR_RETURN(std::string section, cursor.TakeString());
      RETURN_NOT_OK(cursor.Expect(':'));
      RETURN_NOT_OK(cursor.Expect('{'));
      if (section == "counters") {
        if (saw_counters) {
          return Status::InvalidArgument("metrics JSON: duplicate \"counters\"");
        }
        saw_counters = true;
        if (!cursor.TryConsume('}')) {
          do {
            ASSIGN_OR_RETURN(std::string name, cursor.TakeString());
            RETURN_NOT_OK(cursor.Expect(':'));
            ASSIGN_OR_RETURN(uint64_t value, cursor.TakeUint());
            snapshot.counters[std::move(name)] = value;
          } while (cursor.TryConsume(','));
          RETURN_NOT_OK(cursor.Expect('}'));
        }
      } else if (section == "timers") {
        if (saw_timers) {
          return Status::InvalidArgument("metrics JSON: duplicate \"timers\"");
        }
        saw_timers = true;
        if (!cursor.TryConsume('}')) {
          do {
            ASSIGN_OR_RETURN(std::string name, cursor.TakeString());
            RETURN_NOT_OK(cursor.Expect(':'));
            RETURN_NOT_OK(cursor.Expect('{'));
            MetricsSnapshot::Timer timer;
            do {
              ASSIGN_OR_RETURN(std::string field, cursor.TakeString());
              RETURN_NOT_OK(cursor.Expect(':'));
              ASSIGN_OR_RETURN(uint64_t value, cursor.TakeUint());
              if (field == "count") {
                timer.count = value;
              } else if (field == "total_ns") {
                timer.total_ns = value;
              } else {
                return Status::InvalidArgument("metrics JSON: unknown timer field \"",
                                               field, "\"");
              }
            } while (cursor.TryConsume(','));
            RETURN_NOT_OK(cursor.Expect('}'));
            snapshot.timers[std::move(name)] = timer;
          } while (cursor.TryConsume(','));
          RETURN_NOT_OK(cursor.Expect('}'));
        }
      } else {
        return Status::InvalidArgument("metrics JSON: unknown section \"", section,
                                       "\"");
      }
    } while (cursor.TryConsume(','));
    RETURN_NOT_OK(cursor.Expect('}'));
  }
  RETURN_NOT_OK(cursor.ExpectEnd());
  return snapshot;
}

// ---- Shard -------------------------------------------------------------------

void Shard::AddCounter(uint32_t id, uint64_t n) {
  if (id >= counters_.size()) EnsureCounter(id);
  counters_[id].fetch_add(n, std::memory_order_relaxed);
}

void Shard::AddTimer(uint32_t id, uint64_t ns) {
  if (id >= timers_.size()) EnsureTimer(id);
  TimerCell& cell = timers_[id];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.total_ns.fetch_add(ns, std::memory_order_relaxed);
}

void Shard::EnsureCounter(uint32_t id) {
  // Growth is structural, so it synchronizes with Snapshot()/Reset() through
  // the registry mutex; the deque keeps existing cell addresses stable.
  std::lock_guard<std::mutex> lock(Registry::Global().mutex_);
  while (counters_.size() <= id) counters_.emplace_back(0);
}

void Shard::EnsureTimer(uint32_t id) {
  std::lock_guard<std::mutex> lock(Registry::Global().mutex_);
  while (timers_.size() <= id) timers_.emplace_back();
}

// ---- Registry ----------------------------------------------------------------

Registry& Registry::Global() {
  // Leaked on purpose: thread_local shard destructors may run after static
  // destructors would have torn a non-leaked registry down.
  static Registry* global = new Registry();
  return *global;
}

uint32_t Registry::CounterId(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(counter_names_.size());
  counter_names_.emplace_back(name);
  counter_ids_.emplace(counter_names_.back(), id);
  return id;
}

uint32_t Registry::TimerId(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = timer_ids_.find(name);
  if (it != timer_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(timer_names_.size());
  timer_names_.emplace_back(name);
  timer_ids_.emplace(timer_names_.back(), id);
  return id;
}

void Registry::MergeShardLocked(const Shard& shard, MetricsSnapshot* out) const {
  for (uint32_t id = 0; id < shard.counters_.size(); ++id) {
    uint64_t value = shard.counters_[id].load(std::memory_order_relaxed);
    if (value != 0) out->counters[counter_names_[id]] += value;
  }
  for (uint32_t id = 0; id < shard.timers_.size(); ++id) {
    const Shard::TimerCell& cell = shard.timers_[id];
    uint64_t count = cell.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    MetricsSnapshot::Timer& timer = out->timers[timer_names_[id]];
    timer.count += count;
    timer.total_ns += cell.total_ns.load(std::memory_order_relaxed);
  }
}

MetricsSnapshot Registry::Snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out = retired_;
  for (const Shard* shard : shards_) MergeShardLocked(*shard, &out);
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_ = MetricsSnapshot{};
  for (Shard* shard : shards_) {
    for (auto& cell : shard->counters_) cell.store(0, std::memory_order_relaxed);
    for (auto& cell : shard->timers_) {
      cell.count.store(0, std::memory_order_relaxed);
      cell.total_ns.store(0, std::memory_order_relaxed);
    }
  }
}

size_t Registry::num_counters() {
  std::lock_guard<std::mutex> lock(mutex_);
  return counter_names_.size();
}

size_t Registry::num_timers() {
  std::lock_guard<std::mutex> lock(mutex_);
  return timer_names_.size();
}

void Registry::RegisterShard(Shard* shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(shard);
}

void Registry::UnregisterShard(Shard* shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  MergeShardLocked(*shard, &retired_);
  std::erase(shards_, shard);
}

// ---- ThisThreadShard ---------------------------------------------------------

namespace {

/// Owns the thread's shard; folds it into the registry's retired totals when
/// the thread exits so no recorded value is ever lost.
struct ShardHolder {
  Shard shard;
  ShardHolder() { Registry::Global().RegisterShard(&shard); }
  ~ShardHolder() { Registry::Global().UnregisterShard(&shard); }
};

}  // namespace

Shard& ThisThreadShard() {
  thread_local ShardHolder holder;
  return holder.shard;
}

}  // namespace detective::metrics
