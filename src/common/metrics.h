#ifndef DETECTIVE_COMMON_METRICS_H_
#define DETECTIVE_COMMON_METRICS_H_

// Lightweight process-wide observability: named monotonic counters and
// scoped wall-clock timers behind a global registry.
//
// Design goals, in order:
//   1. Hot-path increments must not contend. Every thread writes to its own
//      shard (created lazily on first use); shards are merged at snapshot
//      time, the same discipline ParallelRepair uses for RepairStats.
//   2. Instrumentation must compile out to nothing. The DETECTIVE_COUNT /
//      DETECTIVE_SCOPED_TIMER macros expand to empty statements when the
//      build sets DETECTIVE_METRICS_ENABLED=0 (CMake option
//      DETECTIVE_METRICS=OFF); the classes below stay available either way
//      so tests and tools always link.
//   3. Snapshots are machine-readable. MetricsSnapshot::ToJson() emits the
//      stable schema documented in docs/observability.md, consumed by
//      `detective_clean --metrics-json` and the bench JSON pipeline.
//
// Cells are relaxed atomics: a shard is written only by its owning thread,
// but a snapshot may read it concurrently, and TSan rightly flags plain
// loads/stores for that pattern. Relaxed atomics on a thread-private cache
// line cost roughly an uncontended add.
//
// Usage at an instrumentation site (name must be a string literal or have
// static storage duration — the id is resolved once per site):
//
//   DETECTIVE_COUNT("kb.label_lookups");
//   DETECTIVE_COUNT_N("matcher.assignments_explored", explored);
//   DETECTIVE_SCOPED_TIMER("repair.relation");

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

#ifndef DETECTIVE_METRICS_ENABLED
#define DETECTIVE_METRICS_ENABLED 1
#endif

namespace detective::metrics {

/// Fixed log2 histogram buckets per timer. Bucket 0 holds zero-duration
/// scopes; bucket i (1 <= i < kNumHistogramBuckets-1) holds durations in
/// [2^(i-1), 2^i) ns; the last bucket absorbs everything above ~2^46 ns.
inline constexpr size_t kNumHistogramBuckets = 48;

/// Bucket index for a duration (the shared definition: shards and snapshot
/// percentile math must agree).
constexpr size_t HistogramBucket(uint64_t ns) {
  size_t bucket = 0;
  while (ns != 0 && bucket + 1 < kNumHistogramBuckets) {
    ns >>= 1;
    ++bucket;
  }
  return bucket;
}

/// Inclusive upper bound of a bucket, the value percentiles report.
constexpr uint64_t HistogramBucketUpperNs(size_t bucket) {
  return bucket == 0 ? 0 : (uint64_t{1} << bucket) - 1;
}

/// A merged, point-in-time view of every counter and timer, detached from
/// the registry (plain values, safe to copy/serialize).
struct MetricsSnapshot {
  struct Timer {
    uint64_t count = 0;     // number of timed scopes
    uint64_t total_ns = 0;  // summed wall-clock nanoseconds
    /// Per-bucket scope counts (log2 widths, see HistogramBucket). Sums to
    /// `count` unless merged from a source without histograms.
    std::array<uint64_t, kNumHistogramBuckets> buckets{};

    /// Approximate percentile (upper bound of the bucket holding the
    /// `p`-quantile scope), 0 when nothing was recorded. p in [0, 1].
    uint64_t PercentileNs(double p) const;
    uint64_t p50_ns() const { return PercentileNs(0.50); }
    uint64_t p95_ns() const { return PercentileNs(0.95); }
    uint64_t p99_ns() const { return PercentileNs(0.99); }

    friend bool operator==(const Timer&, const Timer&) = default;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, Timer> timers;

  /// Value of a counter, 0 when never recorded.
  uint64_t counter(std::string_view name) const;
  /// Timer totals, zeros when never recorded.
  Timer timer(std::string_view name) const;

  /// Stable JSON encoding:
  ///   {"counters": {"name": 123, ...},
  ///    "timers": {"name": {"count": 2, "total_ns": 456,
  ///                        "p50_ns": 200, "p95_ns": 255, "p99_ns": 255,
  ///                        "buckets": {"8": 1, "9": 1}}, ...}}
  /// Keys are sorted (std::map order); values are non-negative integers.
  /// `buckets` is sparse (zero buckets omitted); the percentile fields are
  /// derived from it at serialization time.
  std::string ToJson() const;

  /// Parses a document produced by ToJson(). Accepts arbitrary whitespace
  /// between tokens; rejects anything outside the schema above.
  static Result<MetricsSnapshot> FromJson(std::string_view json);

  friend bool operator==(const MetricsSnapshot&, const MetricsSnapshot&) = default;
};

/// Per-thread metric storage. Obtain via ThisThreadShard(); never share a
/// shard across threads — only the owner writes, the registry reads.
class Shard {
 public:
  /// Adds `n` to the counter with registry id `id`.
  void AddCounter(uint32_t id, uint64_t n);
  /// Records one timed scope of `ns` nanoseconds for timer id `id`.
  void AddTimer(uint32_t id, uint64_t ns);

 private:
  friend class Registry;

  struct TimerCell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> total_ns{0};
    std::array<std::atomic<uint64_t>, kNumHistogramBuckets> buckets{};
  };

  // Grown lazily under the registry mutex; std::deque keeps cell addresses
  // stable so the owner can keep incrementing while another id is added.
  std::deque<std::atomic<uint64_t>> counters_;
  std::deque<TimerCell> timers_;

  void EnsureCounter(uint32_t id);
  void EnsureTimer(uint32_t id);
};

/// Global name→id table plus the set of live thread shards and the totals
/// of exited threads. All methods are thread-safe.
class Registry {
 public:
  static Registry& Global();

  /// Resolves (registering on first use) the id of a counter/timer name.
  /// Ids are dense and stable for the process lifetime.
  uint32_t CounterId(std::string_view name);
  uint32_t TimerId(std::string_view name);

  /// Merges every live shard and all retired totals into one snapshot.
  MetricsSnapshot Snapshot();

  /// Zeroes all live shards and drops retired totals. Meant for tests and
  /// benchmarks that measure deltas; racing writers may leak a few counts
  /// into the fresh epoch, so quiesce workers first for exact numbers.
  void Reset();

  /// Atomically snapshots and zeroes in one pass under the registry mutex:
  /// cells are drained with exchange(0), so every recorded count lands in
  /// exactly one epoch even while writers race — the exact-delta tool
  /// Reset()'s documented race calls for. Benchmarks bracket a measured
  /// phase with two calls and use the second result as the phase's delta.
  MetricsSnapshot SnapshotAndReset();

  size_t num_counters();
  size_t num_timers();

  /// Sorted names of every counter/timer registered so far (instrumentation
  /// sites register lazily: only names whose code path has executed appear).
  /// Powers `detective_clean --list-metrics` and the docs drift check.
  std::vector<std::string> CounterNames();
  std::vector<std::string> TimerNames();

  /// Shard lifecycle hooks — called by the thread-local shard holder, not
  /// meant for direct use. Unregistering folds the shard into retired_.
  void RegisterShard(Shard* shard);
  void UnregisterShard(Shard* shard);

 private:
  friend class Shard;

  Registry() = default;

  void MergeShardLocked(const Shard& shard, MetricsSnapshot* out) const;

  std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::map<std::string, uint32_t, std::less<>> counter_ids_;
  std::vector<std::string> timer_names_;
  std::map<std::string, uint32_t, std::less<>> timer_ids_;
  std::vector<Shard*> shards_;
  MetricsSnapshot retired_;  // totals of threads that have exited
};

/// The calling thread's shard, created and registered on first use.
Shard& ThisThreadShard();

/// RAII wall-clock timer; records into the calling thread's shard on
/// destruction. `timer_id` must come from Registry::TimerId.
class ScopedTimer {
 public:
  explicit ScopedTimer(uint32_t timer_id)
      : timer_id_(timer_id), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    ThisThreadShard().AddTimer(
        timer_id_,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  uint32_t timer_id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace detective::metrics

#define DETECTIVE_METRICS_CONCAT_IMPL(a, b) a##b
#define DETECTIVE_METRICS_CONCAT(a, b) DETECTIVE_METRICS_CONCAT_IMPL(a, b)

#if DETECTIVE_METRICS_ENABLED

#define DETECTIVE_COUNT_N(name, n)                                              \
  do {                                                                          \
    static const uint32_t DETECTIVE_METRICS_CONCAT(detective_metric_id_,        \
                                                   __LINE__) =                  \
        ::detective::metrics::Registry::Global().CounterId(name);               \
    ::detective::metrics::ThisThreadShard().AddCounter(                         \
        DETECTIVE_METRICS_CONCAT(detective_metric_id_, __LINE__),               \
        static_cast<uint64_t>(n));                                              \
  } while (0)

#define DETECTIVE_COUNT(name) DETECTIVE_COUNT_N(name, 1)

#define DETECTIVE_SCOPED_TIMER(name)                                            \
  static const uint32_t DETECTIVE_METRICS_CONCAT(detective_timer_id_,           \
                                                 __LINE__) =                    \
      ::detective::metrics::Registry::Global().TimerId(name);                   \
  ::detective::metrics::ScopedTimer DETECTIVE_METRICS_CONCAT(                   \
      detective_scoped_timer_, __LINE__)(                                       \
      DETECTIVE_METRICS_CONCAT(detective_timer_id_, __LINE__))

#else  // !DETECTIVE_METRICS_ENABLED

#define DETECTIVE_COUNT_N(name, n) \
  do {                             \
    (void)sizeof(n);               \
  } while (0)
#define DETECTIVE_COUNT(name) \
  do {                        \
  } while (0)
#define DETECTIVE_SCOPED_TIMER(name) \
  do {                               \
  } while (0)

#endif  // DETECTIVE_METRICS_ENABLED

#endif  // DETECTIVE_COMMON_METRICS_H_
