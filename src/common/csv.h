#ifndef DETECTIVE_COMMON_CSV_H_
#define DETECTIVE_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace detective {

/// RFC-4180-style CSV support: fields containing the delimiter, quotes or
/// newlines are enclosed in double quotes; embedded quotes are doubled.
/// The parser accepts both "\n" and "\r\n" record terminators.
struct CsvOptions {
  char delimiter = ',';
  /// When true, the first record is treated by callers as a header row
  /// (the parser itself returns all rows; this is plumbing for Relation IO).
  bool has_header = true;
  /// Resource-exhaustion guards: parsing fails with a descriptive Status
  /// instead of allocating without bound. 0 = unlimited.
  size_t max_field_bytes = 1 << 20;  // 1 MiB per field
  size_t max_rows = 10'000'000;
};

/// Parses one CSV document into rows of fields.
/// Rejects unterminated quoted fields and stray quotes inside unquoted fields.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       const CsvOptions& options = {});

/// Reads and parses a CSV file.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(const std::string& path,
                                                          const CsvOptions& options = {});

/// Formats one field, quoting only when required.
std::string EscapeCsvField(std::string_view field, char delimiter = ',');

/// Serializes rows into a CSV document terminated by a final newline.
std::string FormatCsv(const std::vector<std::vector<std::string>>& rows,
                      const CsvOptions& options = {});

/// Writes rows to a file, overwriting it.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    const CsvOptions& options = {});

}  // namespace detective

#endif  // DETECTIVE_COMMON_CSV_H_
