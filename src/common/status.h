#ifndef DETECTIVE_COMMON_STATUS_H_
#define DETECTIVE_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace detective {

/// Machine-readable category of a `Status`.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kParseError = 6,
  kInconsistent = 7,
  kUnimplemented = 8,
  kInternal = 9,
};

/// Returns a stable human-readable name for `code` (e.g. "Invalid argument").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail, in the Arrow/RocksDB idiom.
///
/// A `Status` is either OK (the common, allocation-free case) or carries a
/// `StatusCode` plus a context message. Functions that can fail return
/// `Status` (or `Result<T>`, see result.h) instead of throwing: the library
/// never throws on hot paths.
///
/// Usage:
///
///   Status DoThing() {
///     RETURN_NOT_OK(Prepare());
///     if (bad) return Status::InvalidArgument("bad input: ", detail);
///     return Status::OK();
///   }
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory for the OK status.
  static Status OK() { return Status(); }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Make(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ParseError(Args&&... args) {
    return Make(StatusCode::kParseError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Inconsistent(Args&&... args) {
    return Make(StatusCode::kInconsistent, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unimplemented(Args&&... args) {
    return Make(StatusCode::kUnimplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  /// The context message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsInconsistent() const { return code() == StatusCode::kInconsistent; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Appends further context to a non-OK status, preserving the code.
  Status WithContext(std::string_view context) const;

  /// Aborts the process with the status message if not OK. Reserved for
  /// invariant violations where the caller cannot recover.
  void Abort(std::string_view context = {}) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::string message;
    (AppendPiece(&message, std::forward<Args>(args)), ...);
    return Status(code, std::move(message));
  }

  static void AppendPiece(std::string* out, std::string_view piece) {
    out->append(piece);
  }
  static void AppendPiece(std::string* out, const char* piece) { out->append(piece); }
  static void AppendPiece(std::string* out, const std::string& piece) {
    out->append(piece);
  }
  static void AppendPiece(std::string* out, char piece) { out->push_back(piece); }
  template <typename T>
    requires std::is_arithmetic_v<T>
  static void AppendPiece(std::string* out, T piece) {
    out->append(std::to_string(piece));
  }

  // nullptr means OK: the success path never allocates.
  std::unique_ptr<State> state_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Propagates a non-OK status to the caller.
#define RETURN_NOT_OK(expr)                    \
  do {                                         \
    ::detective::Status _st = (expr);          \
    if (!_st.ok()) return _st;                 \
  } while (false)

/// Propagates a non-OK status, appending context for the error trail.
#define RETURN_NOT_OK_CTX(expr, context)                 \
  do {                                                   \
    ::detective::Status _st = (expr);                    \
    if (!_st.ok()) return _st.WithContext(context);      \
  } while (false)

}  // namespace detective

#endif  // DETECTIVE_COMMON_STATUS_H_
