#ifndef DETECTIVE_COMMON_FAULT_H_
#define DETECTIVE_COMMON_FAULT_H_

// Deterministic, seeded fault injection for chaos-testing the cleaning
// pipeline.
//
// Instrumentation sites are tagged with DETECTIVE_FAULT_POINT("kb.load") (in
// Status/Result-returning code) or DETECTIVE_FAULT_POINT_CANCEL("kb.lookup",
// token) (in hot loops, where an injected failure trips a CancelToken
// instead of unwinding through return values — common/deadline.h). A fault
// plan — parsed from `detective_clean --fault-plan=...` or the
// DETECTIVE_FAULT_PLAN environment variable — arms the global Injector with
// clauses of the form site-glob × probability × nth-hit × kind:
//
//   seed=7; site=kb.load, hit=1; site=kb.lookup, kind=latency, latency_ms=50, p=0.01
//
// Clause fields (';' separates clauses, ',' separates fields):
//   site=GLOB        probe sites to match; '*' matches any run of characters
//   kind=status      fail the probe with an IOError Status (default)
//   kind=latency     sleep latency_ms at the probe instead of failing
//   p=F              fire probability per eligible hit, in [0,1] (default 1)
//   hit=N            fire only on the N-th hit of the site (1-based;
//                    default 0 = every hit)
//   latency_ms=N     sleep duration for kind=latency (default 1)
// A standalone `seed=N` clause seeds the probability draws (default 0).
//
// A plan can also be installed for a single thread (ScopedThreadPlan below),
// overriding the global plan there — detective_serve arms a request's
// X-Detective-Fault-Plan header this way so concurrent requests on other
// worker threads stay untouched.
//
// Determinism is the design center: whether a probe fires depends only on
// (seed, site, row, hit index, clause) — never on wall clock, thread
// interleaving, or global call order. Hit indexes are counted per thread and
// reset per tuple (fault::TupleScope), so a tuple faults identically whether
// it is repaired sequentially or by any worker of ParallelRepair — the
// property the chaos tests assert.
//
// Everything compiles out under DETECTIVE_FAULT=OFF (mirroring the metrics
// gate): the macros become empty statements and Armed() a constant false,
// so release builds pay nothing. The classes stay available either way so
// tests and tools always link.
//
// Injected Status faults use StatusCode::kIOError, the code the file
// loaders classify as *transient* and retry with capped exponential backoff
// (RetryTransient below) — parse errors and the like stay permanent.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

#ifndef DETECTIVE_FAULT_ENABLED
#define DETECTIVE_FAULT_ENABLED 1
#endif

namespace detective {
class CancelToken;
}  // namespace detective

namespace detective::fault {

/// What an armed clause does at a matching probe.
enum class FaultKind : uint8_t {
  kStatus = 0,   // the probe fails with an injected IOError
  kLatency = 1,  // the probe sleeps latency_ms, then succeeds
};

/// Stable wire name ("status" | "latency").
std::string_view FaultKindName(FaultKind kind);

/// One clause of a fault plan.
struct FaultClause {
  std::string site_glob;
  FaultKind kind = FaultKind::kStatus;
  double probability = 1.0;
  uint64_t nth_hit = 0;     // 1-based; 0 = every hit
  uint64_t latency_ms = 1;  // kLatency only

  friend bool operator==(const FaultClause&, const FaultClause&) = default;
};

/// A parsed `--fault-plan` specification.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultClause> clauses;

  bool empty() const { return clauses.empty(); }

  /// Parses the clause grammar documented at the top of this header.
  /// Rejects unknown fields, malformed numbers, p outside [0,1], and
  /// clauses without a site.
  static Result<FaultPlan> Parse(std::string_view spec);

  /// Round-trips through Parse().
  std::string ToString() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// `*`-wildcard match (no character classes); used for site globs.
bool GlobMatch(std::string_view glob, std::string_view text);

/// The process-wide injector behind the probe macros. Disarmed by default:
/// a probe then costs one relaxed atomic load.
class Injector {
 public:
  static Injector& Global();

  /// Installs `plan` and starts firing. Call before the work under test;
  /// arming while probes run is safe but the switch-over is not atomic.
  void Arm(FaultPlan plan);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Resolves (registering on first use) the id of a probe site. Ids are
  /// dense and stable for the process lifetime; `site` must have static
  /// storage duration (the macros pass string literals).
  uint32_t SiteId(std::string_view site);

  /// Records a hit at `site_id` and executes whatever the armed plan says:
  /// returns the injected Status for a status fault, sleeps for a latency
  /// fault, returns OK otherwise. Only called behind armed().
  Status Hit(uint32_t site_id);

  /// Hot-path variant: a status fault trips `token` (ignored when null)
  /// instead of returning; a latency fault sleeps and then polls the
  /// token's deadlines so the expiry is observed immediately.
  void HitCancel(uint32_t site_id, CancelToken* token);

  /// Total faults injected since process start (status + latency).
  uint64_t fires() const;

  /// The currently armed plan (empty when disarmed); for logging.
  FaultPlan plan() const;

 private:
  Injector() = default;
  struct Impl;
  Impl& impl();

  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> fires_{0};
};

namespace internal {
/// Set while the calling thread has a ScopedThreadPlan installed. Read on
/// every probe when the global injector is disarmed, so it is a bare
/// thread-local flag rather than a function call.
extern thread_local bool thread_plan_armed;
}  // namespace internal

/// True when a fault plan is armed for the calling thread — either the
/// process-global plan or a ScopedThreadPlan; constant false when the
/// framework is compiled out, so guarded-mode checks fold away.
inline bool Armed() {
#if DETECTIVE_FAULT_ENABLED
  return Injector::Global().armed() || internal::thread_plan_armed;
#else
  return false;
#endif
}

#if DETECTIVE_FAULT_ENABLED

/// Scopes the calling thread's fault decisions to one tuple: sets the row
/// that keys probability draws and resets the per-site hit counters, so the
/// decisions inside are a pure function of (seed, site, row) — independent
/// of which worker repairs the tuple or what ran before it.
class TupleScope {
 public:
  explicit TupleScope(uint64_t row);
  ~TupleScope();
  TupleScope(const TupleScope&) = delete;
  TupleScope& operator=(const TupleScope&) = delete;

 private:
  uint64_t saved_row_;
  bool active_;
};

/// Installs a fault plan visible only to the calling thread for the scope's
/// lifetime, overriding the process-global plan there. This is the
/// per-request chaos mechanism in detective_serve: a worker thread arms the
/// plan from an X-Detective-Fault-Plan header around one request, and
/// concurrent requests on other workers are untouched. Decisions stay
/// deterministic — they key off the scoped plan's own seed, with hit
/// counters reset on entry and exit. An empty plan is a no-op scope.
class ScopedThreadPlan {
 public:
  explicit ScopedThreadPlan(FaultPlan plan);
  ~ScopedThreadPlan();
  ScopedThreadPlan(const ScopedThreadPlan&) = delete;
  ScopedThreadPlan& operator=(const ScopedThreadPlan&) = delete;

 private:
  FaultPlan plan_;
  const FaultPlan* saved_plan_ = nullptr;
  bool saved_armed_ = false;
  bool active_ = false;
};

#else  // !DETECTIVE_FAULT_ENABLED

class TupleScope {
 public:
  explicit TupleScope(uint64_t /*row*/) {}
};

class ScopedThreadPlan {
 public:
  explicit ScopedThreadPlan(FaultPlan /*plan*/) {}
};

#endif  // DETECTIVE_FAULT_ENABLED

// ---- Transient-error retry ---------------------------------------------------

/// Whether `status` is worth retrying: I/O errors are transient (the
/// injected-fault code, and the class real storage hiccups land in); parse
/// and argument errors are permanent.
inline bool IsTransient(const Status& status) { return status.IsIOError(); }

/// Attempts after the initial try, and the backoff ladder base. The ladder
/// is 1, 2, 4 ms — capped small: callers are CLI loaders, not servers.
inline constexpr int kTransientRetries = 3;
inline constexpr uint64_t kTransientBackoffBaseMs = 1;

/// Sleeps and counts one retry (metrics: "fault.transient_retries").
void NoteTransientRetryAndBackOff(uint64_t backoff_ms);

/// Runs `fn` (returning Result<T> or Status-like with ok()/status()),
/// retrying transient failures with capped exponential backoff. The final
/// attempt's outcome is returned unchanged.
template <typename Fn>
auto RetryTransient(Fn&& fn) -> decltype(fn()) {
  auto result = fn();
  uint64_t backoff_ms = kTransientBackoffBaseMs;
  for (int retry = 0; retry < kTransientRetries; ++retry) {
    if (result.ok() || !IsTransient(result.status())) break;
    NoteTransientRetryAndBackOff(backoff_ms);
    backoff_ms *= 2;
    result = fn();
  }
  return result;
}

}  // namespace detective::fault

#if DETECTIVE_FAULT_ENABLED

/// Probe for Status/Result-returning contexts: when armed and the plan
/// fires, returns the injected error from the enclosing function.
#define DETECTIVE_FAULT_POINT(site)                                          \
  do {                                                                       \
    if (::detective::fault::Armed()) {                                       \
      static const uint32_t detective_fault_sid =                            \
          ::detective::fault::Injector::Global().SiteId(site);               \
      ::detective::Status detective_fault_st =                               \
          ::detective::fault::Injector::Global().Hit(detective_fault_sid);   \
      if (!detective_fault_st.ok()) return detective_fault_st;               \
    }                                                                        \
  } while (0)

/// Probe for hot/void contexts: a firing status fault trips `token` (a
/// CancelToken*, may be null) instead of unwinding; latency faults sleep.
#define DETECTIVE_FAULT_POINT_CANCEL(site, token)                            \
  do {                                                                       \
    if (::detective::fault::Armed()) {                                       \
      static const uint32_t detective_fault_sid =                            \
          ::detective::fault::Injector::Global().SiteId(site);               \
      ::detective::fault::Injector::Global().HitCancel(detective_fault_sid,  \
                                                       (token));             \
    }                                                                        \
  } while (0)

#else  // !DETECTIVE_FAULT_ENABLED

#define DETECTIVE_FAULT_POINT(site) \
  do {                              \
  } while (0)
#define DETECTIVE_FAULT_POINT_CANCEL(site, token) \
  do {                                            \
    (void)sizeof(token);                          \
  } while (0)

#endif  // DETECTIVE_FAULT_ENABLED

#endif  // DETECTIVE_COMMON_FAULT_H_
