#include "common/log.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <mutex>

namespace detective::logs {

namespace {

std::atomic<int> g_level{static_cast<int>(Level::kInfo)};
std::atomic<uint64_t> g_events{0};

// The sink mutex serializes format + write so concurrent events never
// interleave mid-line, in either mode.
std::mutex& SinkMutex() {
  static std::mutex mutex;
  return mutex;
}

// Guarded by SinkMutex(); nullptr → text mode on stderr.
std::FILE* g_json_file = nullptr;

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Reserved top-level JSONL keys; colliding field names get an "f_" prefix.
constexpr std::array<std::string_view, 5> kReservedKeys = {
    "ts_ms", "level", "component", "event", "msg"};

bool IsReservedKey(std::string_view key) {
  for (std::string_view reserved : kReservedKeys) {
    if (key == reserved) return true;
  }
  return false;
}

void AppendJsonString(std::string* out, std::string_view value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

void AppendFieldValueJson(std::string* out, const Field& field) {
  switch (field.kind) {
    case Field::Kind::kString:
      AppendJsonString(out, field.str);
      break;
    case Field::Kind::kInt:
      out->append(std::to_string(field.i));
      break;
    case Field::Kind::kUint:
      out->append(std::to_string(field.u));
      break;
    case Field::Kind::kDouble:
      AppendDouble(out, field.d);
      break;
    case Field::Kind::kBool:
      out->append(field.b ? "true" : "false");
      break;
  }
}

void AppendFieldValueText(std::string* out, const Field& field) {
  switch (field.kind) {
    case Field::Kind::kString:
      // Quote strings so values with spaces stay one token.
      out->push_back('"');
      out->append(field.str);
      out->push_back('"');
      break;
    case Field::Kind::kInt:
      out->append(std::to_string(field.i));
      break;
    case Field::Kind::kUint:
      out->append(std::to_string(field.u));
      break;
    case Field::Kind::kDouble:
      AppendDouble(out, field.d);
      break;
    case Field::Kind::kBool:
      out->append(field.b ? "true" : "false");
      break;
  }
}

std::string FormatJsonLine(Level level, std::string_view component,
                           std::string_view event, std::string_view message,
                           std::initializer_list<Field> fields) {
  std::string line;
  line.reserve(128);
  line.append("{\"ts_ms\":");
  line.append(std::to_string(NowMillis()));
  line.append(",\"level\":");
  AppendJsonString(&line, LevelName(level));
  line.append(",\"component\":");
  AppendJsonString(&line, component);
  line.append(",\"event\":");
  AppendJsonString(&line, event);
  line.append(",\"msg\":");
  AppendJsonString(&line, message);
  for (const Field& field : fields) {
    line.push_back(',');
    if (IsReservedKey(field.key)) {
      std::string renamed = "f_";
      renamed.append(field.key);
      AppendJsonString(&line, renamed);
    } else {
      AppendJsonString(&line, field.key);
    }
    line.push_back(':');
    AppendFieldValueJson(&line, field);
  }
  line.append("}\n");
  return line;
}

std::string FormatTextLine(Level level, std::string_view component,
                           std::string_view event, std::string_view message,
                           std::initializer_list<Field> fields) {
  std::string line;
  line.reserve(96);
  line.push_back('[');
  std::string_view name = LevelName(level);
  for (char c : name) {
    line.push_back(
        static_cast<char>(c >= 'a' && c <= 'z' ? c - ('a' - 'A') : c));
  }
  line.push_back(' ');
  line.append(component);
  line.append("] ");
  line.append(event);
  line.append(": ");
  line.append(message);
  for (const Field& field : fields) {
    line.push_back(' ');
    line.append(field.key);
    line.push_back('=');
    AppendFieldValueText(&line, field);
  }
  line.push_back('\n');
  return line;
}

}  // namespace

std::string_view LevelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
  }
  return "?";
}

void SetLevel(Level level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level GetLevel() {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

Status OpenJsonFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open log file ", path, ": ",
                           std::strerror(errno));
  }
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (g_json_file != nullptr) std::fclose(g_json_file);
  g_json_file = file;
  return Status::OK();
}

void CloseJsonFile() {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (g_json_file != nullptr) {
    std::fclose(g_json_file);
    g_json_file = nullptr;
  }
}

bool JsonFileOpen() noexcept {
  std::lock_guard<std::mutex> lock(SinkMutex());
  return g_json_file != nullptr;
}

void Emit(Level level, std::string_view component, std::string_view event,
          std::string_view message, std::initializer_list<Field> fields) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  g_events.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (g_json_file != nullptr) {
    std::string line = FormatJsonLine(level, component, event, message, fields);
    std::fwrite(line.data(), 1, line.size(), g_json_file);
    std::fflush(g_json_file);
    // A dying process must leave its last words where an operator looks
    // first, even when the JSONL sink has claimed the event stream.
    if (level == Level::kError) {
      std::string text = FormatTextLine(level, component, event, message, fields);
      std::fwrite(text.data(), 1, text.size(), stderr);
    }
  } else {
    std::string line = FormatTextLine(level, component, event, message, fields);
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

void EmitLegacy(Level level, std::string_view text, bool always_stderr) {
  // No threshold check here: the legacy macros apply their own level policy
  // (common/logging.h SetLogLevel) before constructing the message.
  g_events.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (g_json_file != nullptr) {
    std::string line;
    line.reserve(text.size() + 64);
    line.append("{\"ts_ms\":");
    line.append(std::to_string(NowMillis()));
    line.append(",\"level\":");
    AppendJsonString(&line, LevelName(level));
    line.append(",\"component\":\"legacy\",\"event\":\"legacy\",\"msg\":");
    AppendJsonString(&line, text);
    line.append("}\n");
    std::fwrite(line.data(), 1, line.size(), g_json_file);
    std::fflush(g_json_file);
    if (!always_stderr) return;
  }
  // The legacy format already carries its own [LEVEL file:line] prefix;
  // emit it verbatim so existing greps (and CHECK death tests) keep working.
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fputc('\n', stderr);
}

uint64_t EventsEmitted() { return g_events.load(std::memory_order_relaxed); }

}  // namespace detective::logs
