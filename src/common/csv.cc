#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/fault.h"

namespace detective {

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       const CsvOptions& options) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  size_t line = 1;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_row = [&]() -> Status {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    if (options.max_rows != 0 && rows.size() > options.max_rows) {
      return Status::ParseError("CSV exceeds the row limit of ",
                                options.max_rows, " rows");
    }
    return Status::OK();
  };
  auto grow_field = [&](char c) -> Status {
    if (options.max_field_bytes != 0 &&
        field.size() >= options.max_field_bytes) {
      return Status::ParseError("CSV field at line ", line,
                                " exceeds the field limit of ",
                                options.max_field_bytes, " bytes");
    }
    field.push_back(c);
    return Status::OK();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          RETURN_NOT_OK(grow_field('"'));
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        RETURN_NOT_OK(grow_field(c));
      }
      continue;
    }
    if (c == '"') {
      if (!field.empty() || field_was_quoted) {
        return Status::ParseError("unexpected quote in unquoted field at line ", line);
      }
      in_quotes = true;
      field_was_quoted = true;
    } else if (c == options.delimiter) {
      end_field();
    } else if (c == '\r') {
      // Consumed as part of \r\n; a bare \r inside a field is unusual enough
      // to reject for data hygiene.
      if (i + 1 >= text.size() || text[i + 1] != '\n') {
        return Status::ParseError("stray carriage return at line ", line);
      }
    } else if (c == '\n') {
      RETURN_NOT_OK(end_row());
      ++line;
    } else {
      if (field_was_quoted) {
        return Status::ParseError("content after closing quote at line ", line);
      }
      RETURN_NOT_OK(grow_field(c));
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field starting before line ", line);
  }
  // A trailing record without a final newline still counts.
  if (!field.empty() || field_was_quoted || !row.empty()) {
    RETURN_NOT_OK(end_row());
  }
  return rows;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(const std::string& path,
                                                          const CsvOptions& options) {
  // Transient I/O failures (including injected ones) are retried with capped
  // backoff; parse errors are permanent and surface immediately.
  auto text = fault::RetryTransient([&]() -> Result<std::string> {
    DETECTIVE_FAULT_POINT("csv.load");
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return Status::IOError("read failed for ", path);
    return buffer.str();
  });
  if (!text.ok()) return text.status();
  return ParseCsv(*text, options);
}

std::string EscapeCsvField(std::string_view field, char delimiter) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string result;
  result.reserve(field.size() + 2);
  result.push_back('"');
  for (char c : field) {
    if (c == '"') result.push_back('"');
    result.push_back(c);
  }
  result.push_back('"');
  return result;
}

std::string FormatCsv(const std::vector<std::vector<std::string>>& rows,
                      const CsvOptions& options) {
  std::string out;
  for (const std::vector<std::string>& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      out.append(EscapeCsvField(row[i], options.delimiter));
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open ", path, " for writing");
  out << FormatCsv(rows, options);
  out.flush();
  if (!out) return Status::IOError("write failed for ", path);
  return Status::OK();
}

}  // namespace detective
