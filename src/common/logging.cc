#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace detective {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(level >= g_log_level || level == LogLevel::kFatal) {
  if (enabled_) {
    // Strip the directory part: readers care about the file name.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace detective
