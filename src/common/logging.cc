#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace detective {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(level >= g_log_level || level == LogLevel::kFatal) {
  if (enabled_) {
    // Strip the directory part: readers care about the file name.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

namespace {

logs::Level ToStructuredLevel(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return logs::Level::kDebug;
    case LogLevel::kInfo:
      return logs::Level::kInfo;
    case LogLevel::kWarning:
      return logs::Level::kWarn;
    case LogLevel::kError:
    case LogLevel::kFatal:
      return logs::Level::kError;
  }
  return logs::Level::kError;
}

}  // namespace

LogMessage::~LogMessage() {
  if (enabled_) {
    // Route through the structured sink so stream-style lines land in the
    // same stream (stderr text or --log-json JSONL) as logs::Emit events.
    // Fatal lines always hit stderr: CHECK diagnostics precede the abort.
    logs::EmitLegacy(ToStructuredLevel(level_), stream_.str(),
                     /*always_stderr=*/level_ == LogLevel::kFatal);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace detective
