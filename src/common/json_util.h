#ifndef DETECTIVE_COMMON_JSON_UTIL_H_
#define DETECTIVE_COMMON_JSON_UTIL_H_

// Minimal JSON reading shared by the tree's machine-readable formats
// (metrics snapshots, provenance JSONL, trace files in tests). This is a
// schema reader, not a general JSON library: it supports exactly the
// constructs our writers emit (AppendJsonString escapes, unsigned integers,
// objects/arrays navigated by the caller), and rejects everything else.
//
// Writers stay hand-rolled (AppendJsonString in string_util.h); readers
// build on JsonCursor:
//
//   JsonCursor cursor(text);
//   RETURN_NOT_OK(cursor.Expect('{'));
//   ASSIGN_OR_RETURN(std::string key, cursor.TakeString());
//   ...
//   RETURN_NOT_OK(cursor.ExpectEnd());

#include <string>
#include <string_view>

#include "common/result.h"

namespace detective {

/// Cursor over a JSON document; every Take*/Expect consumes leading
/// whitespace first. Methods fail with InvalidArgument naming the offset.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  /// Consumes `c` or fails.
  Status Expect(char c);

  /// Consumes `c` if it is next; returns whether it did.
  bool TryConsume(char c);

  /// True iff `c` is the next non-whitespace character (nothing consumed).
  bool Peek(char c);

  /// Double-quoted string with the escapes AppendJsonString emits
  /// (\" \\ and ASCII \uXXXX).
  Result<std::string> TakeString();

  /// Non-negative base-10 integer.
  Result<uint64_t> TakeUint();

  /// Fails unless only trailing whitespace remains.
  Status ExpectEnd();

  /// Offset of the next unconsumed character.
  size_t position() const { return pos_; }

 private:
  void SkipWs();

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace detective

#endif  // DETECTIVE_COMMON_JSON_UTIL_H_
