#ifndef DETECTIVE_COMMON_HASH_H_
#define DETECTIVE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>

namespace detective {

/// FNV-1a over bytes; stable across platforms (unlike std::hash).
inline uint64_t Fnv1a(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// boost-style combiner for aggregating member hashes.
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash for pairs, usable as std::unordered_map<..., PairHash> key hasher.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(std::hash<A>{}(p.first), std::hash<B>{}(p.second));
  }
};

}  // namespace detective

#endif  // DETECTIVE_COMMON_HASH_H_
