#ifndef DETECTIVE_COMMON_HASH_H_
#define DETECTIVE_COMMON_HASH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

namespace detective {

/// FNV-1a over bytes; stable across platforms (unlike std::hash).
inline uint64_t Fnv1a(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// boost-style combiner for aggregating member hashes.
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash for pairs, usable as std::unordered_map<..., PairHash> key hasher.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(std::hash<A>{}(p.first), std::hash<B>{}(p.second));
  }
};

/// Transparent string hasher (Fnv1a) for heterogeneous unordered_map lookup:
/// find(std::string_view) without materializing a std::string key.
struct StringViewHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return static_cast<size_t>(Fnv1a(s));
  }
};

/// Open-addressed hash table from pre-hashed 64-bit keys to uint32 payloads
/// (linear probing, power-of-two capacity, grown at ~0.7 load).
///
/// The caller owns hashing; two distinct originals that collide into the same
/// 64-bit key share one slot. That is by design for the signature indexes
/// (text/signature_index.h), where a collision merges two inverted lists and
/// only widens the candidate superset — callers that need exactness must
/// verify payloads themselves.
class FlatKeyMap {
 public:
  /// Payload sentinel: returned by Find() on absent keys, and the initial
  /// payload of a slot freshly minted by ValueFor().
  static constexpr uint32_t kNotFound = 0xffffffffU;

  FlatKeyMap() = default;

  /// Pre-sizes the table for `expected` keys (optional; the table grows on
  /// demand either way).
  void Reserve(size_t expected) {
    size_t target = 16;
    while (target * 7 < expected * 10) target *= 2;
    if (target > slots_.size()) Rehash(target);
  }

  /// Payload stored under `key`, or kNotFound.
  uint32_t Find(uint64_t key) const {
    if (slots_.empty()) return kNotFound;
    key = Canonical(key);
    const size_t mask = slots_.size() - 1;
    for (size_t i = static_cast<size_t>(key) & mask;; i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (slot.key == key) return slot.value;
      if (slot.key == kEmptyKey) return kNotFound;
    }
  }

  /// Reference to the payload slot for `key`, inserting an empty slot
  /// (payload kNotFound) if absent. The reference is invalidated by the next
  /// ValueFor() or Reserve() call.
  uint32_t& ValueFor(uint64_t key) {
    if ((size_ + 1) * 10 > slots_.size() * 7) Rehash(std::max<size_t>(16, slots_.size() * 2));
    key = Canonical(key);
    const size_t mask = slots_.size() - 1;
    for (size_t i = static_cast<size_t>(key) & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.key == key) return slot.value;
      if (slot.key == kEmptyKey) {
        slot.key = key;
        ++size_;
        return slot.value;
      }
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t value = kNotFound;
  };
  // Key 0 marks an empty slot; a real zero hash is remapped to a fixed
  // non-zero constant (one more benign collision at worst).
  static constexpr uint64_t kEmptyKey = 0;
  static uint64_t Canonical(uint64_t key) {
    return key == 0 ? 0x9e3779b97f4a7c15ULL : key;
  }

  void Rehash(size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    const size_t mask = capacity - 1;
    for (const Slot& slot : old) {
      if (slot.key == kEmptyKey) continue;
      for (size_t i = static_cast<size_t>(slot.key) & mask;; i = (i + 1) & mask) {
        if (slots_[i].key == kEmptyKey) {
          slots_[i] = slot;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace detective

#endif  // DETECTIVE_COMMON_HASH_H_
