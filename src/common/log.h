#ifndef DETECTIVE_COMMON_LOG_H_
#define DETECTIVE_COMMON_LOG_H_

// Structured, leveled logging — the machine-readable sibling of the
// stream-style macros in common/logging.h (which route through this sink so
// both APIs land in one stream).
//
// Every emission is one *event*: (level, component, event, message, fields).
// `component` names the subsystem ("clean", "obs", "repair"), `event` is a
// stable snake_case identifier greppable across versions, `message` is the
// human sentence, and `fields` carry the structured payload using the same
// key conventions as the quarantine/provenance JSONL schemas ("row", "rule",
// "column", "reason", "path", "error").
//
// Two sink modes:
//   * text (default): one line to stderr —
//       [WARN clean] kb_load_failed: error loading KB path="x.nt" error="..."
//   * JSONL (`detective_clean --log-json=FILE`, logs::OpenJsonFile) —
//       {"ts_ms":1759...,"level":"warn","component":"clean",
//        "event":"kb_load_failed","msg":"error loading KB","path":"x.nt",...}
//     Reserved keys (ts_ms/level/component/event/msg) win on collision:
//     a field with a reserved name is emitted with an "f_" prefix.
//
// Error-level events are mirrored to stderr even in JSONL mode: a dying
// process must leave its last words where an operator will look first.
//
// Hot paths use the rate-limited macros below — DETECTIVE_LOG_ONCE fires on
// the first hit of the site only, DETECTIVE_LOG_EVERY_N on every Nth — so a
// per-tuple warning cannot melt a million-row run into gigabytes of stderr.
//
// Thread-safe: one mutex serializes formatting + writing. Do not log from
// the repair inner loops except through the rate-limited macros.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/status.h"

namespace detective::logs {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Stable wire name ("debug" | "info" | "warn" | "error").
std::string_view LevelName(Level level);

/// One typed key/value pair. Keys and string values are borrowed for the
/// duration of the Emit() call only (temporaries in the braced list are
/// safe: they outlive the full expression).
struct Field {
  enum class Kind : uint8_t { kString, kInt, kUint, kDouble, kBool };

  std::string_view key;
  Kind kind = Kind::kString;
  std::string_view str{};
  int64_t i = 0;
  uint64_t u = 0;
  double d = 0;
  bool b = false;

  Field(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), str(v) {}
  Field(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), str(v) {}
  Field(std::string_view k, bool v) : key(k), kind(Kind::kBool), b(v) {}
  Field(std::string_view k, double v) : key(k), kind(Kind::kDouble), d(v) {}
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && std::is_signed_v<T>,
                             int> = 0>
  Field(std::string_view k, T v)
      : key(k), kind(Kind::kInt), i(static_cast<int64_t>(v)) {}
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && std::is_unsigned_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  Field(std::string_view k, T v)
      : key(k), kind(Kind::kUint), u(static_cast<uint64_t>(v)) {}
};

/// Minimum level that is emitted; defaults to kInfo. Thread-safe.
void SetLevel(Level level);
Level GetLevel();

/// Switches the sink to JSONL appended to `path` (truncates an existing
/// file). Failure leaves the text sink active.
Status OpenJsonFile(const std::string& path);

/// Flushes and closes the JSONL sink; subsequent events go to stderr text.
void CloseJsonFile();

/// True while a JSONL file sink is active.
bool JsonFileOpen() noexcept;

/// Core emission; prefer the level helpers below.
void Emit(Level level, std::string_view component, std::string_view event,
          std::string_view message, std::initializer_list<Field> fields = {});

inline void Debug(std::string_view component, std::string_view event,
                  std::string_view message,
                  std::initializer_list<Field> fields = {}) {
  Emit(Level::kDebug, component, event, message, fields);
}
inline void Info(std::string_view component, std::string_view event,
                 std::string_view message,
                 std::initializer_list<Field> fields = {}) {
  Emit(Level::kInfo, component, event, message, fields);
}
inline void Warn(std::string_view component, std::string_view event,
                 std::string_view message,
                 std::initializer_list<Field> fields = {}) {
  Emit(Level::kWarn, component, event, message, fields);
}
inline void Error(std::string_view component, std::string_view event,
                  std::string_view message,
                  std::initializer_list<Field> fields = {}) {
  Emit(Level::kError, component, event, message, fields);
}

/// Pre-formatted line from the legacy stream macros (common/logging.h):
/// routed through the active sink as event "legacy", bypassing the logs
/// threshold (the legacy macros filter with their own SetLogLevel policy).
/// `always_stderr` forces a stderr copy regardless of sink mode (fatal/
/// CHECK diagnostics must reach stderr before the abort).
void EmitLegacy(Level level, std::string_view text, bool always_stderr);

/// Events emitted since process start (any level at or above the
/// threshold); lets tests assert rate limiting without parsing output.
uint64_t EventsEmitted();

}  // namespace detective::logs

/// Logs at most once per call site for the process lifetime. Hot-path safe:
/// after the first hit this is one relaxed atomic load.
#define DETECTIVE_LOG_ONCE(level, component, event, message, ...)              \
  do {                                                                         \
    static ::std::atomic<bool> detective_log_once_fired{false};                \
    if (!detective_log_once_fired.load(::std::memory_order_relaxed) &&         \
        !detective_log_once_fired.exchange(true, ::std::memory_order_relaxed)) \
      ::detective::logs::Emit(level, component, event, message,                \
                              {__VA_ARGS__});                                  \
  } while (0)

/// Warn-once convenience for hot paths.
#define DETECTIVE_WARN_ONCE(component, event, message, ...)          \
  DETECTIVE_LOG_ONCE(::detective::logs::Level::kWarn, component, event, \
                     message __VA_OPT__(, ) __VA_ARGS__)

/// Logs the 1st, (n+1)th, (2n+1)th... hit of this call site.
#define DETECTIVE_LOG_EVERY_N(n, level, component, event, message, ...)       \
  do {                                                                        \
    static ::std::atomic<uint64_t> detective_log_every_count{0};              \
    if (detective_log_every_count.fetch_add(1, ::std::memory_order_relaxed) % \
            (n) ==                                                            \
        0)                                                                    \
      ::detective::logs::Emit(level, component, event, message,               \
                              {__VA_ARGS__});                                 \
  } while (0)

#endif  // DETECTIVE_COMMON_LOG_H_
