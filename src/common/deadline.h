#ifndef DETECTIVE_COMMON_DEADLINE_H_
#define DETECTIVE_COMMON_DEADLINE_H_

// Cooperative time budgets for the cleaning pipeline.
//
// A `Deadline` is a point on the monotonic clock; a `CancelToken` is the
// single-writer flag the hot loops poll to find out that the current unit of
// work should stop — because a deadline expired, or because the fault
// injector (common/fault.h) decided this site fails today.
//
// The paper's scalability argument (§V: "repairing one tuple is irrelevant
// to any other tuple") is what makes cooperative cancellation sound: a
// tripped token abandons exactly one tuple's chase, the driver restores the
// tuple's pristine bytes and quarantines it (core/quarantine.h), and every
// other tuple proceeds untouched.
//
// Polling discipline: `Check()` is cheap enough for the matcher's
// per-assignment loop — a relaxed flag load, plus a clock read every
// `kDeadlinePollStride` calls. Probes that just slept (latency faults) call
// `CheckNow()` to observe the expiry immediately.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace detective {

/// A point on the steady clock, or "never". Copyable, trivially cheap.
class Deadline {
 public:
  /// The default deadline never expires.
  Deadline() = default;

  /// Expires `ms` milliseconds from now (0 = already expired).
  static Deadline AfterMs(uint64_t ms);
  static Deadline Infinite() { return Deadline(); }

  /// The earlier of two deadlines; an infinite deadline loses to any armed
  /// one. Used to tighten a request deadline under a drain deadline.
  static Deadline Earlier(Deadline a, Deadline b) {
    if (a.infinite()) return b;
    if (b.infinite()) return a;
    return a.at_ <= b.at_ ? a : b;
  }

  bool infinite() const { return !armed_; }
  bool Expired() const;

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// Why a token tripped.
enum class CancelReason : uint8_t {
  kNone = 0,
  kFault = 1,        // the fault injector failed a probe site
  kTupleBudget = 2,  // the per-tuple budget (--tuple-budget-ms) expired
  kRunDeadline = 3,  // the whole-run deadline (--deadline-ms) expired
};

/// Stable wire name ("fault" | "tuple_budget" | "run_deadline").
std::string_view CancelReasonName(CancelReason reason);

/// One unit of work's cancellation state. Single writer in practice (the
/// repair thread trips its own token), but the flag is atomic so a future
/// external watchdog could trip it too.
///
/// Lifecycle per tuple: construct (or Reset), ArmDeadlines, hand to the
/// engine/matcher, poll Check() in loops, inspect reason()/site() after the
/// chase returns.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Installs the run-wide and per-tuple deadlines Check() polls.
  void ArmDeadlines(Deadline run, Deadline tuple) {
    run_ = run;
    tuple_ = tuple;
  }

  /// Trips the token. First trip wins; later calls are ignored so the
  /// original cause is preserved.
  void Trip(CancelReason reason, std::string_view site,
            std::string_view detail = {});

  bool tripped() const { return tripped_.load(std::memory_order_relaxed); }

  /// Hot-loop poll: relaxed flag test, and every `kDeadlinePollStride`
  /// calls also reads the clock against the armed deadlines (tripping on
  /// expiry). Returns tripped().
  bool Check() {
    if (tripped()) return true;
    if ((poll_calls_++ & (kDeadlinePollStride - 1)) == 0) return PollDeadlines();
    return false;
  }

  /// Like Check() but always reads the clock — for code that just slept.
  bool CheckNow() {
    if (tripped()) return true;
    return PollDeadlines();
  }

  /// Blames the rule in flight when the trip was first observed; only the
  /// first blame sticks (mirrors Trip). The driver copies it into the
  /// quarantine record.
  void BlameOnce(std::string_view rule, uint64_t round);

  CancelReason reason() const { return reason_; }
  const std::string& site() const { return site_; }
  const std::string& detail() const { return detail_; }
  const std::string& blamed_rule() const { return blamed_rule_; }
  uint64_t blamed_round() const { return blamed_round_; }

  /// Back to the pristine state for the next unit of work.
  void Reset();

 private:
  static constexpr uint32_t kDeadlinePollStride = 64;

  bool PollDeadlines();

  std::atomic<bool> tripped_{false};
  CancelReason reason_ = CancelReason::kNone;
  std::string site_;
  std::string detail_;
  std::string blamed_rule_;
  uint64_t blamed_round_ = 0;
  bool blamed_ = false;
  Deadline run_;
  Deadline tuple_;
  uint32_t poll_calls_ = 0;
};

}  // namespace detective

#endif  // DETECTIVE_COMMON_DEADLINE_H_
