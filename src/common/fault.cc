#include "common/fault.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace detective::fault {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStatus:
      return "status";
    case FaultKind::kLatency:
      return "latency";
  }
  return "unknown";
}

// ---- FaultPlan ---------------------------------------------------------------

Result<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  for (const std::string& clause_text : SplitAndTrim(spec, ';')) {
    if (clause_text.empty()) continue;
    FaultClause clause;
    bool saw_site = false;
    bool saw_latency_ms = false;
    bool is_seed_clause = false;
    for (const std::string& field : SplitAndTrim(clause_text, ',')) {
      if (field.empty()) {
        return Status::ParseError("fault plan: empty field in clause \"",
                                  clause_text, "\"");
      }
      size_t eq = field.find('=');
      if (eq == std::string::npos) {
        return Status::ParseError("fault plan: field \"", field,
                                  "\" is not key=value");
      }
      std::string_view key = TrimView(std::string_view(field).substr(0, eq));
      std::string_view value = TrimView(std::string_view(field).substr(eq + 1));
      if (key == "seed") {
        if (!ParseUint64(value, &plan.seed)) {
          return Status::ParseError("fault plan: bad seed \"", value, "\"");
        }
        is_seed_clause = true;
      } else if (key == "site") {
        if (value.empty()) {
          return Status::ParseError("fault plan: empty site glob");
        }
        clause.site_glob = std::string(value);
        saw_site = true;
      } else if (key == "kind") {
        if (value == "status") {
          clause.kind = FaultKind::kStatus;
        } else if (value == "latency") {
          clause.kind = FaultKind::kLatency;
        } else {
          return Status::ParseError("fault plan: unknown kind \"", value,
                                    "\" (expected status|latency)");
        }
      } else if (key == "p") {
        if (!ParseDouble(value, &clause.probability) ||
            clause.probability < 0.0 || clause.probability > 1.0) {
          return Status::ParseError("fault plan: p must be in [0,1], got \"",
                                    value, "\"");
        }
      } else if (key == "hit") {
        if (!ParseUint64(value, &clause.nth_hit)) {
          return Status::ParseError("fault plan: bad hit \"", value, "\"");
        }
      } else if (key == "latency_ms") {
        if (!ParseUint64(value, &clause.latency_ms)) {
          return Status::ParseError("fault plan: bad latency_ms \"", value,
                                    "\"");
        }
        saw_latency_ms = true;
      } else {
        return Status::ParseError("fault plan: unknown field \"", key, "\"");
      }
    }
    if (is_seed_clause) {
      if (saw_site) {
        return Status::ParseError(
            "fault plan: seed must be its own clause, not mixed with site");
      }
      continue;
    }
    if (!saw_site) {
      return Status::ParseError("fault plan: clause \"", clause_text,
                                "\" has no site");
    }
    if (saw_latency_ms && clause.kind != FaultKind::kLatency) {
      return Status::ParseError(
          "fault plan: latency_ms requires kind=latency in clause \"",
          clause_text, "\"");
    }
    plan.clauses.push_back(std::move(clause));
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out = "seed=" + std::to_string(seed);
  for (const FaultClause& clause : clauses) {
    out += "; site=" + clause.site_glob;
    out += ", kind=" + std::string(FaultKindName(clause.kind));
    if (clause.probability != 1.0) {
      // Shortest representation that parses back to the same double, so
      // ToString() is lossless (the round-trip the tests assert).
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", clause.probability);
      double reparsed = 0.0;
      if (ParseDouble(buffer, &reparsed)) {
        for (int precision = 1; precision < 17; ++precision) {
          char shorter[32];
          std::snprintf(shorter, sizeof(shorter), "%.*g", precision,
                        clause.probability);
          if (ParseDouble(shorter, &reparsed) &&
              reparsed == clause.probability) {
            std::memcpy(buffer, shorter, sizeof(shorter));
            break;
          }
        }
      }
      out += ", p=";
      out += buffer;
    }
    if (clause.nth_hit != 0) out += ", hit=" + std::to_string(clause.nth_hit);
    if (clause.kind == FaultKind::kLatency) {
      out += ", latency_ms=" + std::to_string(clause.latency_ms);
    }
  }
  return out;
}

bool GlobMatch(std::string_view glob, std::string_view text) {
  // Iterative '*' matcher with backtracking to the last star.
  size_t g = 0;
  size_t t = 0;
  size_t star = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (g < glob.size() && (glob[g] == text[t])) {
      ++g;
      ++t;
    } else if (g < glob.size() && glob[g] == '*') {
      star = g++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      g = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') ++g;
  return g == glob.size();
}

// ---- Injector ----------------------------------------------------------------

namespace {

/// The row key used outside any TupleScope (load-time probes).
constexpr uint64_t kGlobalRow = ~uint64_t{0};

struct ThreadContext {
  uint64_t row = kGlobalRow;
  std::vector<uint64_t> hits;  // per site id, within the current scope
  // Thread-scoped plan installed by ScopedThreadPlan; overrides the global
  // plan for this thread while non-null.
  const FaultPlan* plan = nullptr;
};

ThreadContext& Context() {
  thread_local ThreadContext context;
  return context;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic draw in [0,1) from the decision key. No global RNG state:
/// the outcome depends only on the arguments.
double DecisionDraw(uint64_t seed, uint64_t site_hash, uint64_t row,
                    uint64_t hit, size_t clause_index) {
  uint64_t mixed = SplitMix64(seed ^ site_hash);
  mixed = SplitMix64(mixed ^ (row * 0x9e3779b97f4a7c15ULL));
  mixed = SplitMix64(mixed ^ (hit * 0xc2b2ae3d27d4eb4fULL));
  mixed = SplitMix64(mixed ^ static_cast<uint64_t>(clause_index));
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace

struct Injector::Impl {
  std::mutex mutex;
  FaultPlan plan;
  std::vector<std::string> site_names;
  std::vector<uint64_t> site_hashes;
  std::map<std::string, uint32_t, std::less<>> site_ids;
  // Per site, the indexes of plan clauses whose glob matches it. Rebuilt at
  // Arm() for known sites and on first registration for new ones.
  std::vector<std::vector<uint32_t>> site_clauses;

  std::vector<uint32_t> ClausesFor(std::string_view site) const {
    std::vector<uint32_t> matching;
    for (uint32_t i = 0; i < plan.clauses.size(); ++i) {
      if (GlobMatch(plan.clauses[i].site_glob, site)) matching.push_back(i);
    }
    return matching;
  }
};

Injector& Injector::Global() {
  static Injector* injector = new Injector();
  return *injector;
}

Injector::Impl& Injector::impl() {
  static Impl* impl = new Impl();
  return *impl;
}

void Injector::Arm(FaultPlan plan) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.plan = std::move(plan);
  state.site_clauses.clear();
  state.site_clauses.reserve(state.site_names.size());
  for (const std::string& site : state.site_names) {
    state.site_clauses.push_back(state.ClausesFor(site));
  }
  armed_.store(!state.plan.empty(), std::memory_order_relaxed);
}

void Injector::Disarm() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  armed_.store(false, std::memory_order_relaxed);
  state.plan = FaultPlan();
  for (std::vector<uint32_t>& clauses : state.site_clauses) clauses.clear();
}

uint32_t Injector::SiteId(std::string_view site) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.site_ids.find(site);
  if (it != state.site_ids.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(state.site_names.size());
  state.site_names.emplace_back(site);
  state.site_hashes.push_back(Fnv1a(site));
  state.site_ids.emplace(std::string(site), id);
  state.site_clauses.push_back(state.ClausesFor(site));
  return id;
}

FaultPlan Injector::plan() const {
  Impl& state = const_cast<Injector*>(this)->impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.plan;
}

uint64_t Injector::fires() const {
  return fires_.load(std::memory_order_relaxed);
}

namespace {

/// The outcome of one probe hit, decided under the injector lock but
/// executed (sleep / status construction) outside it.
struct HitDecision {
  bool fire_status = false;
  uint64_t sleep_ms = 0;  // summed over firing latency clauses
  std::string site;
  uint64_t hit = 0;
};

}  // namespace

Status Injector::Hit(uint32_t site_id) {
  HitDecision decision;
  {
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    if (site_id >= state.site_clauses.size()) return Status::OK();
    ThreadContext& context = Context();
    // A thread-scoped plan (ScopedThreadPlan) overrides the global one for
    // this thread; its clause matches are computed on the fly — plans are a
    // handful of clauses and the armed path is chaos-testing only.
    const FaultPlan* plan = nullptr;
    std::vector<uint32_t> thread_matching;
    const std::vector<uint32_t>* matching = nullptr;
    if (context.plan != nullptr) {
      plan = context.plan;
      for (uint32_t i = 0; i < plan->clauses.size(); ++i) {
        if (GlobMatch(plan->clauses[i].site_glob, state.site_names[site_id])) {
          thread_matching.push_back(i);
        }
      }
      matching = &thread_matching;
    } else if (armed()) {
      plan = &state.plan;
      matching = &state.site_clauses[site_id];
    } else {
      return Status::OK();
    }
    if (context.hits.size() <= site_id) context.hits.resize(site_id + 1, 0);
    decision.hit = ++context.hits[site_id];
    decision.site = state.site_names[site_id];
    const uint64_t site_hash = state.site_hashes[site_id];
    for (uint32_t clause_index : *matching) {
      const FaultClause& clause = plan->clauses[clause_index];
      if (clause.nth_hit != 0 && decision.hit != clause.nth_hit) continue;
      if (clause.probability < 1.0 &&
          DecisionDraw(plan->seed, site_hash, context.row, decision.hit,
                       clause_index) >= clause.probability) {
        continue;
      }
      fires_.fetch_add(1, std::memory_order_relaxed);
      if (clause.kind == FaultKind::kLatency) {
        decision.sleep_ms += clause.latency_ms;
      } else {
        decision.fire_status = true;
        break;  // first status clause wins; later clauses are moot
      }
    }
  }
  if (decision.sleep_ms > 0) {
    DETECTIVE_COUNT("fault.injected_latency");
    std::this_thread::sleep_for(std::chrono::milliseconds(decision.sleep_ms));
  }
  if (decision.fire_status) {
    DETECTIVE_COUNT("fault.injected_status");
    return Status::IOError("injected fault at ", decision.site, " (hit ",
                           decision.hit, ")");
  }
  return Status::OK();
}

void Injector::HitCancel(uint32_t site_id, CancelToken* token) {
  Status status = Hit(site_id);
  if (!status.ok()) {
    if (token != nullptr) {
      // The site is embedded in the message; extract it from the registry
      // instead of re-parsing. Registry reads are cheap here (fault path).
      Impl& state = impl();
      std::string site;
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (site_id < state.site_names.size()) {
          site = state.site_names[site_id];
        }
      }
      token->Trip(CancelReason::kFault, site, status.message());
    }
    return;
  }
  // A latency fault may have pushed the tuple over its budget; observe the
  // expiry immediately rather than at the next stride-aligned poll.
  if (token != nullptr) token->CheckNow();
}

namespace internal {
thread_local bool thread_plan_armed = false;
}  // namespace internal

// ---- TupleScope --------------------------------------------------------------

#if DETECTIVE_FAULT_ENABLED

TupleScope::TupleScope(uint64_t row) : saved_row_(kGlobalRow), active_(Armed()) {
  if (!active_) return;
  ThreadContext& context = Context();
  saved_row_ = context.row;
  context.row = row;
  context.hits.assign(context.hits.size(), 0);
}

TupleScope::~TupleScope() {
  if (!active_) return;
  ThreadContext& context = Context();
  context.row = saved_row_;
  context.hits.assign(context.hits.size(), 0);
}

// ---- ScopedThreadPlan --------------------------------------------------------

ScopedThreadPlan::ScopedThreadPlan(FaultPlan plan) : plan_(std::move(plan)) {
  if (plan_.empty()) return;
  ThreadContext& context = Context();
  saved_plan_ = context.plan;
  saved_armed_ = internal::thread_plan_armed;
  context.plan = &plan_;
  context.hits.assign(context.hits.size(), 0);
  internal::thread_plan_armed = true;
  active_ = true;
}

ScopedThreadPlan::~ScopedThreadPlan() {
  if (!active_) return;
  ThreadContext& context = Context();
  context.plan = saved_plan_;
  context.hits.assign(context.hits.size(), 0);
  internal::thread_plan_armed = saved_armed_;
}

#endif  // DETECTIVE_FAULT_ENABLED

// ---- Transient retry ---------------------------------------------------------

void NoteTransientRetryAndBackOff(uint64_t backoff_ms) {
  DETECTIVE_COUNT("fault.transient_retries");
  std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
}

}  // namespace detective::fault
