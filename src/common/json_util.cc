#include "common/json_util.h"

#include <cctype>
#include <cstdint>

namespace detective {

void JsonCursor::SkipWs() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
}

Status JsonCursor::Expect(char c) {
  SkipWs();
  if (pos_ >= text_.size() || text_[pos_] != c) {
    return Status::InvalidArgument("json: expected '", std::string(1, c),
                                   "' at offset ", std::to_string(pos_));
  }
  ++pos_;
  return Status::OK();
}

bool JsonCursor::TryConsume(char c) {
  SkipWs();
  if (pos_ < text_.size() && text_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

bool JsonCursor::Peek(char c) {
  SkipWs();
  return pos_ < text_.size() && text_[pos_] == c;
}

Result<std::string> JsonCursor::TakeString() {
  RETURN_NOT_OK(Expect('"'));
  std::string out;
  while (pos_ < text_.size() && text_[pos_] != '"') {
    char c = text_[pos_++];
    if (c == '\\') {
      if (pos_ >= text_.size()) break;
      char escaped = text_[pos_++];
      switch (escaped) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("json: truncated \\u escape");
          }
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              return Status::InvalidArgument("json: bad \\u escape");
            }
            value = value * 16 +
                    static_cast<unsigned>(std::isdigit(static_cast<unsigned char>(h))
                                              ? h - '0'
                                              : std::tolower(h) - 'a' + 10);
          }
          if (value > 0x7f) {
            return Status::InvalidArgument("json: non-ASCII \\u escape unsupported");
          }
          out.push_back(static_cast<char>(value));
          break;
        }
        default:
          return Status::InvalidArgument("json: unsupported escape '\\",
                                         std::string(1, escaped), "'");
      }
    } else {
      out.push_back(c);
    }
  }
  if (pos_ >= text_.size()) {
    return Status::InvalidArgument("json: unterminated string");
  }
  ++pos_;  // closing quote
  return out;
}

Result<uint64_t> JsonCursor::TakeUint() {
  SkipWs();
  size_t start = pos_;
  while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
  if (pos_ == start) {
    return Status::InvalidArgument("json: expected integer at offset ",
                                   std::to_string(start));
  }
  uint64_t value = 0;
  for (size_t i = start; i < pos_; ++i) {
    uint64_t digit = static_cast<uint64_t>(text_[i] - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("json: integer overflow");
    }
    value = value * 10 + digit;
  }
  return value;
}

Status JsonCursor::ExpectEnd() {
  SkipWs();
  if (pos_ != text_.size()) {
    return Status::InvalidArgument("json: trailing content at offset ",
                                   std::to_string(pos_));
  }
  return Status::OK();
}

}  // namespace detective
