#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace detective {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kInconsistent:
      return "Inconsistent";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  result.append(": ");
  result.append(message());
  return result;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string message(context);
  message.append(": ");
  message.append(this->message());
  return Status(code(), std::move(message));
}

void Status::Abort(std::string_view context) const {
  if (ok()) return;
  std::fprintf(stderr, "FATAL%s%.*s: %s\n", context.empty() ? "" : " ",
               static_cast<int>(context.size()), context.data(), ToString().c_str());
  std::abort();
}

}  // namespace detective
