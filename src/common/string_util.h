#ifndef DETECTIVE_COMMON_STRING_UTIL_H_
#define DETECTIVE_COMMON_STRING_UTIL_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace detective {

/// Splits `input` at each occurrence of `delimiter`; empty pieces are kept.
/// Splitting the empty string yields one empty piece.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Splits and trims ASCII whitespace from every piece.
std::vector<std::string> SplitAndTrim(std::string_view input, char delimiter);

/// Joins `pieces` with `separator` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces, std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view input);
std::string Trim(std::string_view input);

/// ASCII-only case conversion.
std::string ToLower(std::string_view input);
std::string ToUpper(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Case-insensitive (ASCII) equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Collapses runs of whitespace into single spaces and trims the ends;
/// used to normalize cell values and KB labels before matching.
std::string NormalizeWhitespace(std::string_view input);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view input, std::string_view from,
                       std::string_view to);

/// Appends `text` to `*out` as a double-quoted JSON string value, escaping
/// quotes, backslashes, and control characters. Shared by every JSON emitter
/// in the tree (metrics snapshots, lint diagnostics, bench output).
void AppendJsonString(std::string_view text, std::string* out);

/// Parses a non-negative base-10 integer; returns false on any non-digit or
/// overflow. The strict contract suits configuration and file parsing.
bool ParseUint64(std::string_view text, uint64_t* value);
bool ParseInt64(std::string_view text, int64_t* value);
bool ParseDouble(std::string_view text, double* value);

/// Append-only byte arena for interning strings. Returned views stay valid
/// for the arena's lifetime: storage blocks are never reallocated or freed
/// until destruction, so holders of views survive further Intern() calls and
/// moves of the arena itself. Used by the signature indexes to store one
/// compact copy of every indexed label instead of a std::string per entry.
class StringArena {
 public:
  StringArena() = default;
  StringArena(StringArena&&) = default;
  StringArena& operator=(StringArena&&) = default;
  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;

  /// Copies `s` into the arena and returns a view of the stored bytes.
  std::string_view Intern(std::string_view s);

  size_t bytes_used() const { return bytes_used_; }

 private:
  static constexpr size_t kBlockBytes = 64 * 1024;

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cursor_ = nullptr;
  size_t block_remaining_ = 0;
  size_t bytes_used_ = 0;
};

}  // namespace detective

#endif  // DETECTIVE_COMMON_STRING_UTIL_H_
