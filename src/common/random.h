#ifndef DETECTIVE_COMMON_RANDOM_H_
#define DETECTIVE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace detective {

/// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
///
/// All data generators and error injectors take an explicit `Rng` (or seed)
/// so every experiment in the benchmark harness is bit-reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform over the full 64-bit range.
  uint64_t NextUint64();

  /// Uniform in [0, bound); bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Uniformly chosen index into a non-empty container of size `size`.
  size_t NextIndex(size_t size);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in selection order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

/// Zipf-distributed integers over [0, n): rank 0 is the most frequent.
/// Used for skewed workload generation (entity popularity in synthetic KBs).
class ZipfDistribution {
 public:
  /// `exponent` = 0 degenerates to uniform; typical workloads use ~0.8-1.2.
  ZipfDistribution(size_t n, double exponent);

  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace detective

#endif  // DETECTIVE_COMMON_RANDOM_H_
