#ifndef DETECTIVE_COMMON_TRACE_H_
#define DETECTIVE_COMMON_TRACE_H_

// Thread-sharded span/instant-event tracing behind a global registry — the
// timeline companion to the aggregate counters of common/metrics.h.
//
// Design goals, in order (the same discipline as metrics::Registry):
//   1. The hot path must not contend. Every thread records into its own
//      fixed-capacity ring buffer of relaxed-atomic cells (created lazily on
//      first use); rings are merged at collection time. When the ring wraps,
//      the oldest events are overwritten and counted as dropped — tracing
//      never allocates or blocks on the recording path.
//   2. Instrumentation must compile out to nothing. DETECTIVE_TRACE_SPAN /
//      DETECTIVE_TRACE_INSTANT collapse to a no-op object when the build
//      sets DETECTIVE_METRICS_ENABLED=0 (CMake option DETECTIVE_METRICS=OFF);
//      the classes stay available either way so tools and tests always link.
//   3. Recording is off by default. Spans check one relaxed atomic and do
//      nothing until Registry::Start() flips it — an untraced run pays one
//      predictable branch per site.
//
// The exporter emits the Chrome trace-event JSON array format, loadable in
// chrome://tracing and Perfetto, documented in docs/observability.md and
// wired into `detective_clean --trace-json=FILE` and bench_util.h.
//
// Event names and arg keys MUST be string literals (or otherwise have static
// storage duration): cells store the pointers, not copies.
//
// Usage:
//
//   trace::Registry::Global().Start();
//   {
//     DETECTIVE_TRACE_SPAN("repair.round", {"round", round});
//     ...work...
//   }
//   DETECTIVE_TRACE_INSTANT("repair.version_emitted");
//   trace::Registry::Global().Stop();
//   trace::WriteChromeTraceJson(trace::Registry::Global().Collect(), path);

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

#ifndef DETECTIVE_METRICS_ENABLED
#define DETECTIVE_METRICS_ENABLED 1
#endif

namespace detective::trace {

/// Maximum key/value annotations per event (kept tiny: cells are POD).
inline constexpr size_t kMaxArgs = 2;

/// Events retained per thread before the ring wraps (oldest overwritten).
inline constexpr size_t kRingCapacity = size_t{1} << 14;

/// One integer annotation on an event. `key` must be a string literal.
struct Arg {
  const char* key = nullptr;
  int64_t value = 0;
};

/// A decoded event, detached from any ring (plain values, safe to copy).
struct Event {
  const char* name = nullptr;  // static string
  char phase = 'X';            // 'X' complete span | 'i' instant
  uint32_t tid = 0;            // dense per-ring thread id (registration order)
  uint64_t ts_ns = 0;          // start, ns since the process trace epoch
  uint64_t dur_ns = 0;         // span duration; 0 for instants
  uint8_t num_args = 0;
  std::array<Arg, kMaxArgs> args{};
};

/// Nanoseconds since the process-wide trace epoch (steady clock; the epoch
/// is anchored on first use, so all threads share one timeline).
uint64_t NowNs();

/// Per-thread event storage. Obtain via ThisThreadRing(); only the owning
/// thread writes, the registry reads at collection time.
///
/// Cells are relaxed atomics for the same reason metrics::Shard's are: a
/// collection racing a live writer must be TSan-clean. A racing collection
/// can observe a torn event only in the wrap-around case; collect after
/// joining workers (or after Stop()) for exact timelines.
class Ring {
 public:
  /// Appends one event (owner thread only). Never blocks; overwrites the
  /// oldest event once `kRingCapacity` are live.
  void Push(const Event& event);

 private:
  friend class Registry;

  struct Cell {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint32_t> meta{0};  // phase | num_args << 8
    std::array<std::atomic<const char*>, kMaxArgs> arg_keys{};
    std::array<std::atomic<int64_t>, kMaxArgs> arg_values{};
  };

  uint32_t tid_ = 0;                     // assigned at registration
  std::atomic<uint64_t> pushed_{0};      // total events ever pushed
  std::vector<Cell> cells_{kRingCapacity};
};

/// Global on/off gate plus the set of live thread rings and the events of
/// exited threads. All methods are thread-safe.
class Registry {
 public:
  static Registry& Global();

  /// Discards everything recorded so far and starts recording. Call while
  /// no traced work is running (the reset races live writers otherwise).
  void Start();

  /// Stops recording. Already-recorded events stay collectable.
  void Stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Merges every live ring plus the folded events of exited threads,
  /// sorted by (tid, ts, -dur) so each thread's timeline is monotonic and
  /// enclosing spans precede the spans they contain.
  std::vector<Event> Collect();

  /// Events lost to ring wrap-around since Start() (coverage honesty: a
  /// nonzero value means the head of some thread's timeline is missing).
  uint64_t dropped_events();

  /// Ring lifecycle hooks — called by the thread-local ring holder, not
  /// meant for direct use. Unregistering folds the ring into retired_.
  void RegisterRing(Ring* ring);
  void UnregisterRing(Ring* ring);

 private:
  Registry() = default;

  /// Decodes the live slots of `ring` into `out` (registry mutex held).
  void CollectRingLocked(const Ring& ring, std::vector<Event>* out) const;

  std::atomic<bool> enabled_{false};
  std::mutex mutex_;
  std::vector<Ring*> rings_;
  std::vector<Event> retired_;   // events of threads that have exited
  uint64_t retired_dropped_ = 0;
  uint32_t next_tid_ = 1;        // 0 is reserved for "unknown"
};

/// The calling thread's ring, created and registered on first use.
Ring& ThisThreadRing();

/// RAII span: records one complete ('X') event covering its lifetime.
/// Cheap no-op while the registry is disabled.
class Span {
 public:
  explicit Span(const char* name, Arg a = {}, Arg b = {});
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;  // nullptr when recording was off at construction
  uint64_t start_ns_ = 0;
  std::array<Arg, kMaxArgs> args_;
  uint8_t num_args_ = 0;
};

/// Records one instant ('i') event at the current time.
void EmitInstant(const char* name, Arg a = {}, Arg b = {});

/// No-op twins so instrumentation sites compile identically (and argument
/// expressions stay type-checked) when DETECTIVE_METRICS=OFF.
class NoopSpan {
 public:
  explicit NoopSpan(const char*, Arg = {}, Arg = {}) {}
  NoopSpan(const NoopSpan&) = delete;
  NoopSpan& operator=(const NoopSpan&) = delete;
};
inline void NoopInstant(const char*, Arg = {}, Arg = {}) {}

/// Chrome trace-event JSON (array form): one object per event, `ts`/`dur`
/// in microseconds, plus thread_name metadata records. Loadable in
/// chrome://tracing and Perfetto.
std::string ToChromeTraceJson(const std::vector<Event>& events);

/// Writes ToChromeTraceJson(events) to `path`.
Status WriteChromeTraceJson(const std::vector<Event>& events,
                            const std::string& path);

}  // namespace detective::trace

#define DETECTIVE_TRACE_CONCAT_IMPL(a, b) a##b
#define DETECTIVE_TRACE_CONCAT(a, b) DETECTIVE_TRACE_CONCAT_IMPL(a, b)

#if DETECTIVE_METRICS_ENABLED

#define DETECTIVE_TRACE_SPAN(...)                                  \
  ::detective::trace::Span DETECTIVE_TRACE_CONCAT(                 \
      detective_trace_span_, __LINE__)(__VA_ARGS__)

#define DETECTIVE_TRACE_INSTANT(...) ::detective::trace::EmitInstant(__VA_ARGS__)

#else  // !DETECTIVE_METRICS_ENABLED

#define DETECTIVE_TRACE_SPAN(...)                                  \
  ::detective::trace::NoopSpan DETECTIVE_TRACE_CONCAT(             \
      detective_trace_span_, __LINE__)(__VA_ARGS__)

#define DETECTIVE_TRACE_INSTANT(...) ::detective::trace::NoopInstant(__VA_ARGS__)

#endif  // DETECTIVE_METRICS_ENABLED

#endif  // DETECTIVE_COMMON_TRACE_H_
