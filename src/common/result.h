#ifndef DETECTIVE_COMMON_RESULT_H_
#define DETECTIVE_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/status.h"

namespace detective {

/// A value-or-error holder, companion to `Status`.
///
/// `Result<T>` is either a `T` or a non-OK `Status`. It is the return type of
/// operations that produce a value but can fail, e.g. parsers:
///
///   Result<KnowledgeBase> kb = ParseNTriples(path);
///   if (!kb.ok()) return kb.status();
///   Use(kb.ValueOrDie());
///
/// Or, inside a function that itself returns Status/Result:
///
///   ASSIGN_OR_RETURN(KnowledgeBase kb, ParseNTriples(path));
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from a non-OK status (implicit so `return Status::...` works).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      Status::Internal("Result constructed from OK status").Abort("Result");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    CheckOk();
    return std::move(std::get<T>(repr_));
  }

  /// The held value, or `fallback` on error.
  T ValueOr(T fallback) const& {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void CheckOk() const {
    if (!ok()) std::get<Status>(repr_).Abort("Result::ValueOrDie");
  }

  std::variant<Status, T> repr_;
};

#define DETECTIVE_CONCAT_IMPL(a, b) a##b
#define DETECTIVE_CONCAT(a, b) DETECTIVE_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the status from the
/// enclosing function, otherwise declares `lhs` initialized with the value.
#define ASSIGN_OR_RETURN(lhs, rexpr) \
  ASSIGN_OR_RETURN_IMPL(DETECTIVE_CONCAT(_result_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr)   \
  auto tmp = (rexpr);                            \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).ValueOrDie()

}  // namespace detective

#endif  // DETECTIVE_COMMON_RESULT_H_
