#include "common/deadline.h"

namespace detective {

Deadline Deadline::AfterMs(uint64_t ms) {
  Deadline deadline;
  deadline.armed_ = true;
  deadline.at_ =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  return deadline;
}

bool Deadline::Expired() const {
  if (!armed_) return false;
  return std::chrono::steady_clock::now() >= at_;
}

std::string_view CancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kFault:
      return "fault";
    case CancelReason::kTupleBudget:
      return "tuple_budget";
    case CancelReason::kRunDeadline:
      return "run_deadline";
  }
  return "unknown";
}

void CancelToken::Trip(CancelReason reason, std::string_view site,
                       std::string_view detail) {
  if (tripped()) return;
  reason_ = reason;
  site_ = std::string(site);
  detail_ = std::string(detail);
  tripped_.store(true, std::memory_order_relaxed);
}

void CancelToken::BlameOnce(std::string_view rule, uint64_t round) {
  if (blamed_) return;
  blamed_ = true;
  blamed_rule_ = std::string(rule);
  blamed_round_ = round;
}

bool CancelToken::PollDeadlines() {
  if (tuple_.Expired()) {
    Trip(CancelReason::kTupleBudget, "");
    return true;
  }
  if (run_.Expired()) {
    Trip(CancelReason::kRunDeadline, "");
    return true;
  }
  return false;
}

void CancelToken::Reset() {
  tripped_.store(false, std::memory_order_relaxed);
  reason_ = CancelReason::kNone;
  site_.clear();
  detail_.clear();
  blamed_rule_.clear();
  blamed_round_ = 0;
  blamed_ = false;
  run_ = Deadline();
  tuple_ = Deadline();
  poll_calls_ = 0;
}

}  // namespace detective
