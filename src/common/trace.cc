#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/string_util.h"

namespace detective::trace {

uint64_t NowNs() {
  // The epoch anchors on the first call so timestamps stay small and every
  // thread shares one timeline.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - epoch)
                                   .count());
}

// ---- Ring --------------------------------------------------------------------

void Ring::Push(const Event& event) {
  uint64_t sequence = pushed_.load(std::memory_order_relaxed);
  Cell& cell = cells_[sequence % kRingCapacity];
  cell.name.store(event.name, std::memory_order_relaxed);
  cell.ts_ns.store(event.ts_ns, std::memory_order_relaxed);
  cell.dur_ns.store(event.dur_ns, std::memory_order_relaxed);
  cell.meta.store(static_cast<uint32_t>(static_cast<unsigned char>(event.phase)) |
                      (static_cast<uint32_t>(event.num_args) << 8),
                  std::memory_order_relaxed);
  for (size_t i = 0; i < kMaxArgs; ++i) {
    cell.arg_keys[i].store(i < event.num_args ? event.args[i].key : nullptr,
                           std::memory_order_relaxed);
    cell.arg_values[i].store(i < event.num_args ? event.args[i].value : 0,
                             std::memory_order_relaxed);
  }
  // Publish after the cell is written; Collect() pairs with an acquire load.
  pushed_.store(sequence + 1, std::memory_order_release);
}

// ---- Registry ----------------------------------------------------------------

Registry& Registry::Global() {
  // Leaked on purpose: thread_local ring destructors may run after static
  // destructors would have torn a non-leaked registry down.
  static Registry* global = new Registry();
  return *global;
}

void Registry::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_.clear();
  retired_dropped_ = 0;
  for (Ring* ring : rings_) {
    ring->pushed_.store(0, std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Registry::Stop() { enabled_.store(false, std::memory_order_relaxed); }

void Registry::CollectRingLocked(const Ring& ring, std::vector<Event>* out) const {
  const uint64_t pushed = ring.pushed_.load(std::memory_order_acquire);
  const uint64_t live = std::min<uint64_t>(pushed, kRingCapacity);
  // Oldest retained event first: when the ring wrapped, the slot after the
  // write cursor holds it.
  const uint64_t first = pushed - live;
  for (uint64_t sequence = first; sequence < pushed; ++sequence) {
    const Ring::Cell& cell = ring.cells_[sequence % kRingCapacity];
    Event event;
    event.name = cell.name.load(std::memory_order_relaxed);
    if (event.name == nullptr) continue;  // torn racing write; skip
    uint32_t meta = cell.meta.load(std::memory_order_relaxed);
    event.phase = static_cast<char>(meta & 0xff);
    event.num_args = static_cast<uint8_t>(
        std::min<uint32_t>((meta >> 8) & 0xff, kMaxArgs));
    event.tid = ring.tid_;
    event.ts_ns = cell.ts_ns.load(std::memory_order_relaxed);
    event.dur_ns = cell.dur_ns.load(std::memory_order_relaxed);
    for (size_t i = 0; i < event.num_args; ++i) {
      event.args[i].key = cell.arg_keys[i].load(std::memory_order_relaxed);
      event.args[i].value = cell.arg_values[i].load(std::memory_order_relaxed);
      if (event.args[i].key == nullptr) event.num_args = static_cast<uint8_t>(i);
    }
    out->push_back(event);
  }
}

std::vector<Event> Registry::Collect() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out = retired_;
  for (const Ring* ring : rings_) CollectRingLocked(*ring, &out);
  // Monotonic timeline per thread; at equal start, enclosing (longer) spans
  // first so viewers nest children correctly.
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    return a.dur_ns > b.dur_ns;
  });
  return out;
}

uint64_t Registry::dropped_events() {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t dropped = retired_dropped_;
  for (const Ring* ring : rings_) {
    uint64_t pushed = ring->pushed_.load(std::memory_order_relaxed);
    if (pushed > kRingCapacity) dropped += pushed - kRingCapacity;
  }
  return dropped;
}

void Registry::RegisterRing(Ring* ring) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring->tid_ = next_tid_++;
  rings_.push_back(ring);
}

void Registry::UnregisterRing(Ring* ring) {
  std::lock_guard<std::mutex> lock(mutex_);
  CollectRingLocked(*ring, &retired_);
  uint64_t pushed = ring->pushed_.load(std::memory_order_relaxed);
  if (pushed > kRingCapacity) retired_dropped_ += pushed - kRingCapacity;
  std::erase(rings_, ring);
}

namespace {

/// Owns the thread's ring; folds it into the registry's retired events when
/// the thread exits so no recorded span is ever lost.
struct RingHolder {
  Ring ring;
  RingHolder() { Registry::Global().RegisterRing(&ring); }
  ~RingHolder() { Registry::Global().UnregisterRing(&ring); }
};

}  // namespace

Ring& ThisThreadRing() {
  thread_local RingHolder holder;
  return holder.ring;
}

// ---- Span / EmitInstant ------------------------------------------------------

Span::Span(const char* name, Arg a, Arg b)
    : name_(Registry::Global().enabled() ? name : nullptr), args_{a, b} {
  if (name_ == nullptr) return;
  num_args_ = b.key != nullptr ? 2 : (a.key != nullptr ? 1 : 0);
  start_ns_ = NowNs();
}

Span::~Span() {
  if (name_ == nullptr || !Registry::Global().enabled()) return;
  Event event;
  event.name = name_;
  event.phase = 'X';
  event.ts_ns = start_ns_;
  event.dur_ns = NowNs() - start_ns_;
  event.num_args = num_args_;
  event.args = args_;
  ThisThreadRing().Push(event);
}

void EmitInstant(const char* name, Arg a, Arg b) {
  if (!Registry::Global().enabled()) return;
  Event event;
  event.name = name;
  event.phase = 'i';
  event.ts_ns = NowNs();
  event.num_args = b.key != nullptr ? 2 : (a.key != nullptr ? 1 : 0);
  event.args = {a, b};
  ThisThreadRing().Push(event);
}

// ---- Chrome trace-event export -----------------------------------------------

std::string ToChromeTraceJson(const std::vector<Event>& events) {
  std::string out = "[";
  bool first = true;
  auto begin_record = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };

  // Name the timeline rows once per thread id (Perfetto shows these).
  uint32_t last_tid = 0;
  for (const Event& event : events) {
    if (event.tid == last_tid) continue;
    last_tid = event.tid;
    begin_record();
    out += R"({"name": "thread_name", "ph": "M", "pid": 1, "tid": )";
    out += std::to_string(event.tid);
    out += R"(, "args": {"name": "detective-)" + std::to_string(event.tid) +
           "\"}}";
  }

  char number[32];
  for (const Event& event : events) {
    begin_record();
    out += "{\"name\": ";
    AppendJsonString(event.name, &out);
    out += ", \"cat\": \"detective\", \"ph\": \"";
    out.push_back(event.phase);
    out += "\", \"pid\": 1, \"tid\": ";
    out += std::to_string(event.tid);
    // Chrome trace timestamps are microseconds; three decimals keep ns.
    std::snprintf(number, sizeof(number), "%.3f",
                  static_cast<double>(event.ts_ns) / 1000.0);
    out += ", \"ts\": ";
    out += number;
    if (event.phase == 'X') {
      std::snprintf(number, sizeof(number), "%.3f",
                    static_cast<double>(event.dur_ns) / 1000.0);
      out += ", \"dur\": ";
      out += number;
    } else if (event.phase == 'i') {
      out += ", \"s\": \"t\"";  // thread-scoped instant
    }
    if (event.num_args > 0) {
      out += ", \"args\": {";
      for (size_t i = 0; i < event.num_args; ++i) {
        if (i > 0) out += ", ";
        AppendJsonString(event.args[i].key, &out);
        out += ": ";
        out += std::to_string(event.args[i].value);
      }
      out += "}";
    }
    out += "}";
  }
  out += first ? "]\n" : "\n]\n";
  return out;
}

Status WriteChromeTraceJson(const std::vector<Event>& events,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << ToChromeTraceJson(events);
  if (!out) {
    return Status::IOError("error writing trace JSON to ", path);
  }
  return Status::OK();
}

}  // namespace detective::trace
