#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace detective {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256**
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  DETECTIVE_CHECK_GT(bound, 0u);
  // Rejection sampling: discard the biased tail of the 64-bit range.
  uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  DETECTIVE_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

size_t Rng::NextIndex(size_t size) {
  DETECTIVE_CHECK_GT(size, 0u);
  return static_cast<size_t>(NextUint64(size));
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DETECTIVE_CHECK_LE(k, n);
  // Partial Fisher–Yates over the index vector: O(n) memory, O(n + k) time.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  std::vector<size_t> sample;
  sample.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextUint64(n - i));
    std::swap(indices[i], indices[j]);
    sample.push_back(indices[i]);
  }
  return sample;
}

ZipfDistribution::ZipfDistribution(size_t n, double exponent) {
  DETECTIVE_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0;
  for (size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
    cdf_[rank] = total;
  }
  for (double& value : cdf_) value /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace detective
