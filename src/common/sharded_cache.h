#ifndef DETECTIVE_COMMON_SHARDED_CACHE_H_
#define DETECTIVE_COMMON_SHARDED_CACHE_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/hash.h"

namespace detective {

/// Aggregated counters of one ShardedCache, monotonic since construction.
struct ShardedCacheStats {
  uint64_t hits = 0;       // Find() calls that returned an entry
  uint64_t misses = 0;     // Find() calls that returned nullptr
  uint64_t inserts = 0;    // entries actually stored
  uint64_t rejected = 0;   // Insert() calls refused because the shard was full

  std::string ToString() const;
};

/// Fixed-capacity concurrent memo, sharded 64 ways by key hash so writers on
/// different shards never contend. Built for the cross-worker candidate cache
/// (§IV-B(3) value memo shared across repair threads), but generic.
///
/// Concurrency contract:
///   - Insert-once: the first Insert() for a key wins; later inserts return
///     the stored entry and discard theirs. Entries are never updated, so
///     every reader of a key observes the same value regardless of thread
///     interleaving — which keeps cached repairs deterministic as long as
///     values are a pure function of their key.
///   - Pointer stability: returned `const V*` stay valid for the cache's
///     lifetime. To guarantee that, a full shard REJECTS new inserts instead
///     of evicting live entries (rejections show up in stats().rejected;
///     callers fall back to computing — or privately memoising — the value).
template <typename V>
class ShardedCache {
 public:
  static constexpr size_t kNumShards = 64;

  /// `capacity` bounds the total entry count across all shards.
  explicit ShardedCache(size_t capacity = size_t{1} << 20)
      : shard_capacity_(std::max<size_t>(1, capacity / kNumShards)) {}

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// The entry stored under `key`, or nullptr.
  const V* Find(std::string_view key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return nullptr;
    }
    ++shard.hits;
    return it->second.get();
  }

  /// Stores `value` under `key` unless the key exists (first insert wins) or
  /// the shard is at capacity. Returns the stored entry — the caller's on a
  /// fresh insert, the incumbent when the key already exists — or nullptr on
  /// capacity rejection, in which case `value` is left untouched so the
  /// caller can still use it.
  const V* Insert(std::string_view key, V&& value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) return it->second.get();
    if (shard.map.size() >= shard_capacity_) {
      ++shard.rejected;
      return nullptr;
    }
    auto stored = std::make_unique<V>(std::move(value));
    const V* result = stored.get();
    shard.map.emplace(std::string(key), std::move(stored));
    ++shard.inserts;
    return result;
  }

  /// Live entry count (locks every shard; for tests and reporting).
  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  ShardedCacheStats stats() const {
    ShardedCacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total.hits += shard.hits;
      total.misses += shard.misses;
      total.inserts += shard.inserts;
      total.rejected += shard.rejected;
    }
    return total;
  }

  size_t shard_capacity() const { return shard_capacity_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    // unique_ptr values give entry-pointer stability across rehashes.
    std::unordered_map<std::string, std::unique_ptr<const V>, StringViewHash,
                       std::equal_to<>>
        map;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t rejected = 0;
  };

  Shard& ShardFor(std::string_view key) {
    // Top bits pick the shard; the map's own hash uses the low bits, so one
    // shard's entries still spread across its buckets.
    return shards_[static_cast<size_t>(Fnv1a(key) >> 58U)];
  }

  const size_t shard_capacity_;
  std::array<Shard, kNumShards> shards_;
};

}  // namespace detective

#endif  // DETECTIVE_COMMON_SHARDED_CACHE_H_
