#include "baselines/katara.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace detective {

Katara::Katara(const KnowledgeBase& kb, SchemaMatchingGraph pattern,
               KataraOptions options)
    : kb_(kb), pattern_(std::move(pattern)), options_(options) {}

Status Katara::Init(const Schema& schema) {
  RETURN_NOT_OK(pattern_.Validate());
  auto bound = BindGraph(pattern_, schema, kb_);
  if (!bound.ok()) return bound.status();
  bound_ = std::move(*bound);
  matcher_ = std::make_unique<EvidenceMatcher>(kb_, options_.matcher);
  return Status::OK();
}

std::vector<uint32_t> Katara::BestMatchedSubset(const Tuple& tuple,
                                                std::vector<ItemId>* assignment) {
  const size_t n = bound_.nodes.size();
  std::vector<uint32_t> all(n);
  for (uint32_t i = 0; i < n; ++i) all[i] = i;

  // Full match first — the overwhelmingly common case for clean tuples.
  if (matcher_->FindAssignment(bound_.nodes, bound_.edges, all, tuple, assignment)) {
    return all;
  }
  if (n > options_.max_pattern_nodes) return {};

  // Masks grouped by popcount, descending, so the first hit is a maximum
  // matchable subset ("minimally unmatched attributes").
  std::vector<std::vector<uint32_t>> masks_by_size(n);
  for (uint32_t mask = 1; mask < (1u << n) - 1; ++mask) {
    masks_by_size[static_cast<size_t>(std::popcount(mask))].push_back(mask);
  }
  for (size_t size = n - 1; size >= 1; --size) {
    for (uint32_t mask : masks_by_size[size]) {
      std::vector<uint32_t> subset;
      subset.reserve(size);
      for (uint32_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) subset.push_back(i);
      }
      if (matcher_->FindAssignment(bound_.nodes, bound_.edges, subset, tuple,
                                   assignment)) {
        return subset;
      }
    }
    if (size == 1) break;
  }
  return {};
}

void Katara::CleanTuple(Tuple* tuple) {
  DETECTIVE_CHECK(matcher_ != nullptr) << "Init() not called";
  ++stats_.tuples;
  if (!bound_.usable) return;

  std::vector<ItemId> assignment;
  std::vector<uint32_t> matched = BestMatchedSubset(*tuple, &assignment);
  if (matched.empty()) return;  // nothing recognizable; KATARA stays silent

  if (matched.size() == bound_.nodes.size()) {
    // Full match: the whole tuple is marked correct.
    ++stats_.full_matches;
    for (const BoundNode& node : bound_.nodes) {
      if (node.IsExistential()) continue;
      if (!tuple->IsPositive(node.column)) {
        tuple->MarkPositive(node.column);
        ++stats_.cells_marked;
      }
    }
    return;
  }

  // Partial match: the minimally unmatched attributes are blamed and
  // repaired to the KB candidate closest to the current (dirty) value.
  ++stats_.partial_matches;
  std::vector<char> in_subset(bound_.nodes.size(), 0);
  for (uint32_t v : matched) in_subset[v] = 1;
  for (uint32_t v = 0; v < bound_.nodes.size(); ++v) {
    if (in_subset[v]) continue;
    const BoundNode& node = bound_.nodes[v];
    if (node.IsExistential()) continue;  // nothing to blame or repair
    if (tuple->IsPositive(node.column)) continue;
    std::vector<ItemId> candidates =
        matcher_->TargetsFor(bound_.nodes, bound_.edges, v, assignment);
    if (candidates.empty()) continue;
    const std::string& current = tuple->value(node.column);
    // Minimum repair cost = maximum similarity to the current value.
    std::string best;
    double best_score = -1;
    for (ItemId candidate : candidates) {
      std::string label(kb_.Label(candidate));
      double score = node.sim.Score(current, label);
      if (score > best_score || (score == best_score && label < best)) {
        best = std::move(label);
        best_score = score;
      }
    }
    if (best != current) {
      tuple->Repair(node.column, best);
      ++stats_.repairs;
    }
  }
}

void Katara::CleanRelation(Relation* relation) {
  for (size_t row = 0; row < relation->num_tuples(); ++row) {
    Tuple tuple = relation->tuple(row);
    CleanTuple(&tuple);
    relation->CommitRow(row, tuple);
  }
}

}  // namespace detective
