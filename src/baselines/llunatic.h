#ifndef DETECTIVE_BASELINES_LLUNATIC_H_
#define DETECTIVE_BASELINES_LLUNATIC_H_

#include <string>
#include <vector>

#include "baselines/fd.h"
#include "common/status.h"
#include "relation/relation.h"

namespace detective {

/// The placeholder value a cell takes when the chase cannot decide a repair
/// (Llunatic's "llun" / labelled null). The evaluation scores a llun written
/// over a genuinely dirty cell as a partially correct change (metric 0.5 in
/// the paper's Exp-2).
inline constexpr const char kLlunValue[] = "_LLUN_";

/// Simplified Llunatic (Geerts et al., PVLDB'13): holistic FD repair with a
/// *frequency cost-manager*.
///
/// The chase groups cells into equivalence classes induced by FD violations
/// (rows agreeing on an FD's LHS must agree on its RHS); each class is then
/// resolved by the cost manager: the most frequent value wins and overwrites
/// the minority cells; on a frequency tie the class is repaired to a llun.
/// Rounds repeat until no violation remains or `max_rounds` is hit, since a
/// repair can surface new violations for another FD.
///
/// This captures exactly the behaviours the paper contrasts with DRs:
/// heuristic choice of which cell is wrong (precision decays as the error
/// rate grows — majorities go wrong), lluns under ambiguity, and holistic
/// multi-tuple reasoning (the slowest-scaling curve of Fig. 8(d)).
struct LlunaticOptions {
  size_t max_rounds = 5;
};

class LlunaticRepairer {
 public:
  struct Stats {
    size_t rounds = 0;
    size_t classes_resolved = 0;
    size_t repairs = 0;       // cells rewritten to a concrete value
    size_t lluns = 0;         // cells rewritten to kLlunValue
  };

  explicit LlunaticRepairer(std::vector<FunctionalDependency> fds,
                            LlunaticOptions options = {});

  /// Repairs the relation in place (holistic: needs the whole table).
  Status Repair(Relation* relation);

  const Stats& stats() const { return stats_; }

 private:
  /// One chase round over one FD; returns the number of cells changed.
  size_t ChaseRound(Relation* relation, const BoundFd& fd);

  std::vector<FunctionalDependency> fds_;
  LlunaticOptions options_;
  Stats stats_;
};

}  // namespace detective

#endif  // DETECTIVE_BASELINES_LLUNATIC_H_
