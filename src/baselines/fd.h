#ifndef DETECTIVE_BASELINES_FD_H_
#define DETECTIVE_BASELINES_FD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relation/relation.h"

namespace detective {

/// A functional dependency X -> A over a relation schema.
struct FunctionalDependency {
  std::vector<std::string> lhs;
  std::string rhs;

  std::string ToString() const;
};

/// An FD with columns resolved against a schema.
struct BoundFd {
  std::vector<ColumnIndex> lhs;
  ColumnIndex rhs = kInvalidColumn;
};

Result<BoundFd> BindFd(const FunctionalDependency& fd, const Schema& schema);

/// A violation: two rows agreeing on the FD's LHS but not its RHS.
struct FdViolation {
  size_t fd_index;
  size_t row_a;
  size_t row_b;
};

/// All pairwise violations of `fds` in `relation` (each conflicting pair
/// reported once, row_a < row_b). Quadratic blow-up is avoided by grouping
/// on LHS values first.
Result<std::vector<FdViolation>> FindViolations(
    const Relation& relation, const std::vector<FunctionalDependency>& fds);

}  // namespace detective

#endif  // DETECTIVE_BASELINES_FD_H_
