#ifndef DETECTIVE_BASELINES_KATARA_H_
#define DETECTIVE_BASELINES_KATARA_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/bound_rule.h"
#include "core/evidence_matcher.h"
#include "core/matching_graph.h"
#include "kb/knowledge_base.h"
#include "relation/relation.h"

namespace detective {

/// Simulation of KATARA (Chu et al., SIGMOD'15) as revised by the paper for
/// a crowd-free comparison (Exp-1):
///
///   "When there was a full match of a tuple and the KB under the table
///    pattern defined by KATARA, the whole tuple was marked as correct.
///    When there was a partial match, we revised KATARA by marking the
///    minimally unmatched attributes as wrong. For repairing ... we picked
///    the one from all candidates that minimizes the repair cost."
///
/// A table pattern is one holistic schema-level matching graph covering the
/// whole table (discoverable with DiscoverMatchingGraph). Unlike detective
/// rules, the pattern has no negative semantics: a mismatch does not say
/// *which* cell is wrong, so KATARA guesses the maximal matchable subset and
/// blames the rest — the source of its precision loss in Table III.

/// Tuning knobs for the KATARA simulation.
struct KataraOptions {
  MatcherOptions matcher;
  /// Patterns with more nodes than this skip the exponential subset search
  /// and only attempt the full match (KATARA's patterns are small).
  size_t max_pattern_nodes = 12;
};

class Katara {
 public:
  struct Stats {
    size_t tuples = 0;
    size_t full_matches = 0;
    size_t partial_matches = 0;
    size_t repairs = 0;
    size_t cells_marked = 0;
  };

  /// `kb` must outlive the Katara instance.
  Katara(const KnowledgeBase& kb, SchemaMatchingGraph pattern,
         KataraOptions options = {});

  /// Binds the pattern; fails on schema mismatch. An unusable pattern (KB
  /// lacks a class/relation) makes CleanTuple a no-op, mirroring BindGraph.
  Status Init(const Schema& schema);

  /// Annotates and repairs one tuple:
  ///   - full pattern match: mark every pattern column positive;
  ///   - partial match: take a maximum matchable node subset, mark it
  ///     positive, and repair each unmatched column to the minimum-cost
  ///     candidate the KB offers (cost = dissimilarity to the current
  ///     value); cells with no candidate are left untouched.
  void CleanTuple(Tuple* tuple);
  void CleanRelation(Relation* relation);

  const Stats& stats() const { return stats_; }

 private:
  /// Finds the largest subset of pattern nodes with an instance-level match;
  /// returns the subset (sorted) and fills `assignment` for its nodes.
  std::vector<uint32_t> BestMatchedSubset(const Tuple& tuple,
                                          std::vector<ItemId>* assignment);

  const KnowledgeBase& kb_;
  SchemaMatchingGraph pattern_;
  KataraOptions options_;
  BoundGraph bound_;
  std::unique_ptr<EvidenceMatcher> matcher_;
  Stats stats_;
};

}  // namespace detective

#endif  // DETECTIVE_BASELINES_KATARA_H_
