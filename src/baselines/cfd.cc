#include "baselines/cfd.h"

#include <unordered_map>

#include "common/string_util.h"

namespace detective {

std::string ConstantCfd::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += lhs[i].first + "=" + lhs[i].second;
  }
  out += "] -> " + rhs_column + "=" + rhs_value;
  return out;
}

Result<std::vector<ConstantCfd>> MineConstantCfds(
    const Relation& ground_truth, const std::vector<FunctionalDependency>& fds,
    size_t min_support) {
  std::vector<ConstantCfd> cfds;
  for (const FunctionalDependency& fd : fds) {
    ASSIGN_OR_RETURN(BoundFd bound, BindFd(fd, ground_truth.schema()));
    struct PatternInfo {
      size_t support = 0;
      std::string rhs_value;
      bool unique_rhs = true;
      std::vector<std::string> lhs_values;
    };
    std::unordered_map<std::string, PatternInfo> patterns;
    for (size_t row = 0; row < ground_truth.num_tuples(); ++row) {
      const Tuple& tuple = ground_truth.tuple(row);
      std::string key;
      std::vector<std::string> lhs_values;
      for (ColumnIndex c : bound.lhs) {
        key += tuple.value(c);
        key.push_back('\x1f');
        lhs_values.push_back(tuple.value(c));
      }
      PatternInfo& info = patterns[key];
      if (info.support == 0) {
        info.rhs_value = tuple.value(bound.rhs);
        info.lhs_values = std::move(lhs_values);
      } else if (info.rhs_value != tuple.value(bound.rhs)) {
        info.unique_rhs = false;  // the pattern does not determine the RHS
      }
      ++info.support;
    }
    for (const auto& [key, info] : patterns) {
      if (!info.unique_rhs || info.support < min_support) continue;
      ConstantCfd cfd;
      for (size_t i = 0; i < fd.lhs.size(); ++i) {
        cfd.lhs.emplace_back(fd.lhs[i], info.lhs_values[i]);
      }
      cfd.rhs_column = fd.rhs;
      cfd.rhs_value = info.rhs_value;
      cfds.push_back(std::move(cfd));
    }
  }
  return cfds;
}

CfdRepairer::CfdRepairer(std::vector<ConstantCfd> cfds) : cfds_(std::move(cfds)) {}

Status CfdRepairer::Init(const Schema& schema) {
  indexes_.clear();
  // Group CFDs by (LHS column set, RHS column) so each tuple does one hash
  // probe per group rather than one scan per CFD.
  std::unordered_map<std::string, size_t> group_of;
  for (const ConstantCfd& cfd : cfds_) {
    std::vector<ColumnIndex> columns;
    std::string group_key;
    for (const auto& [column, constant] : cfd.lhs) {
      ColumnIndex index = schema.FindColumn(column);
      if (index == kInvalidColumn) {
        return Status::InvalidArgument("CFD references unknown column '", column, "'");
      }
      columns.push_back(index);
      group_key += std::to_string(index);
      group_key.push_back(',');
    }
    ColumnIndex rhs = schema.FindColumn(cfd.rhs_column);
    if (rhs == kInvalidColumn) {
      return Status::InvalidArgument("CFD references unknown column '",
                                     cfd.rhs_column, "'");
    }
    group_key.push_back('>');
    group_key += std::to_string(rhs);
    auto [it, inserted] = group_of.try_emplace(group_key, indexes_.size());
    if (inserted) {
      indexes_.push_back({std::move(columns), rhs, {}});
    }
    std::string pattern;
    for (const auto& [column, constant] : cfd.lhs) {
      pattern += constant;
      pattern.push_back('\x1f');
    }
    indexes_[it->second].pattern_to_value[pattern] = &cfd.rhs_value;
  }
  return Status::OK();
}

void CfdRepairer::RepairTuple(Tuple* tuple) {
  ++stats_.tuples;
  for (const PatternIndex& index : indexes_) {
    std::string pattern;
    for (ColumnIndex c : index.columns) {
      pattern += tuple->value(c);
      pattern.push_back('\x1f');
    }
    auto it = index.pattern_to_value.find(pattern);
    if (it == index.pattern_to_value.end()) continue;
    if (tuple->value(index.rhs) != *it->second) {
      tuple->Repair(index.rhs, *it->second);
      ++stats_.repairs;
    }
  }
}

void CfdRepairer::RepairRelation(Relation* relation) {
  for (size_t row = 0; row < relation->num_tuples(); ++row) {
    Tuple tuple = relation->tuple(row);
    RepairTuple(&tuple);
    relation->CommitRow(row, tuple);
  }
}

}  // namespace detective
