#ifndef DETECTIVE_BASELINES_CFD_H_
#define DETECTIVE_BASELINES_CFD_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/fd.h"
#include "common/result.h"
#include "relation/relation.h"

namespace detective {

/// A constant conditional functional dependency (Fan et al., TODS'08):
/// if t[lhs columns] equal the constants, then t[rhs_column] = rhs_value.
struct ConstantCfd {
  std::vector<std::pair<std::string, std::string>> lhs;  // (column, constant)
  std::string rhs_column;
  std::string rhs_value;

  std::string ToString() const;
};

/// Mines constant CFDs from `ground_truth`, one per distinct LHS pattern of
/// each embedding FD whose RHS value is unique and whose support is at least
/// `min_support` rows — the paper's Exp-2 setup ("for constant CFDs, they
/// were generated from ground truth").
Result<std::vector<ConstantCfd>> MineConstantCfds(
    const Relation& ground_truth, const std::vector<FunctionalDependency>& fds,
    size_t min_support = 1);

/// Applies constant CFDs: whenever a tuple's LHS equals a rule's constants,
/// the RHS cell is overwritten with the rule's constant (the paper's
/// simulated user behaviour). Makes mistakes exactly when the tuple's LHS
/// itself is dirty.
class CfdRepairer {
 public:
  struct Stats {
    size_t tuples = 0;
    size_t repairs = 0;
  };

  explicit CfdRepairer(std::vector<ConstantCfd> cfds);

  /// Resolves column names; fails on schema mismatch.
  Status Init(const Schema& schema);

  void RepairTuple(Tuple* tuple);
  void RepairRelation(Relation* relation);

  const Stats& stats() const { return stats_; }

 private:
  struct BoundCfd {
    std::vector<std::pair<ColumnIndex, const std::string*>> lhs;
    ColumnIndex rhs = kInvalidColumn;
    const std::string* rhs_value = nullptr;
  };

  std::vector<ConstantCfd> cfds_;
  std::vector<BoundCfd> bound_;
  // LHS-pattern hash index per distinct LHS column set, for O(1) matching.
  struct PatternIndex {
    std::vector<ColumnIndex> columns;
    ColumnIndex rhs = kInvalidColumn;
    std::unordered_map<std::string, const std::string*> pattern_to_value;
  };
  std::vector<PatternIndex> indexes_;
  Stats stats_;
};

}  // namespace detective

#endif  // DETECTIVE_BASELINES_CFD_H_
