#include "baselines/fd.h"

#include <unordered_map>

#include "common/string_util.h"

namespace detective {

std::string FunctionalDependency::ToString() const {
  std::string out = Join(lhs, ", ");
  out += " -> ";
  out += rhs;
  return out;
}

Result<BoundFd> BindFd(const FunctionalDependency& fd, const Schema& schema) {
  BoundFd bound;
  if (fd.lhs.empty()) return Status::InvalidArgument("FD with empty LHS");
  for (const std::string& column : fd.lhs) {
    ColumnIndex index = schema.FindColumn(column);
    if (index == kInvalidColumn) {
      return Status::InvalidArgument("FD references unknown column '", column, "'");
    }
    bound.lhs.push_back(index);
  }
  bound.rhs = schema.FindColumn(fd.rhs);
  if (bound.rhs == kInvalidColumn) {
    return Status::InvalidArgument("FD references unknown column '", fd.rhs, "'");
  }
  return bound;
}

Result<std::vector<FdViolation>> FindViolations(
    const Relation& relation, const std::vector<FunctionalDependency>& fds) {
  std::vector<FdViolation> violations;
  for (size_t f = 0; f < fds.size(); ++f) {
    ASSIGN_OR_RETURN(BoundFd fd, BindFd(fds[f], relation.schema()));
    // Group rows by LHS value vector.
    std::unordered_map<std::string, std::vector<size_t>> groups;
    for (size_t row = 0; row < relation.num_tuples(); ++row) {
      std::string key;
      for (ColumnIndex c : fd.lhs) {
        key += relation.value(row, c);
        key.push_back('\x1f');
      }
      groups[key].push_back(row);
    }
    for (const auto& [key, rows] : groups) {
      for (size_t i = 0; i < rows.size(); ++i) {
        for (size_t j = i + 1; j < rows.size(); ++j) {
          if (relation.value(rows[i], fd.rhs) !=
              relation.value(rows[j], fd.rhs)) {
            violations.push_back({f, rows[i], rows[j]});
          }
        }
      }
    }
  }
  return violations;
}

}  // namespace detective
