#include "baselines/llunatic.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace detective {

LlunaticRepairer::LlunaticRepairer(std::vector<FunctionalDependency> fds,
                                   LlunaticOptions options)
    : fds_(std::move(fds)), options_(options) {}

size_t LlunaticRepairer::ChaseRound(Relation* relation, const BoundFd& fd) {
  // Equivalence classes: all RHS cells of rows sharing an LHS value vector.
  std::unordered_map<std::string, std::vector<size_t>> groups;
  for (size_t row = 0; row < relation->num_tuples(); ++row) {
    std::string key;
    for (ColumnIndex c : fd.lhs) {
      key += relation->value(row, c);
      key.push_back('\x1f');
    }
    groups[key].push_back(row);
  }

  size_t changed = 0;
  for (const auto& [key, rows] : groups) {
    if (rows.size() < 2) continue;
    // Frequency of each RHS value within the class; lluns never vote.
    std::map<std::string, size_t, std::less<>> frequency;
    for (size_t row : rows) {
      std::string_view value = relation->value(row, fd.rhs);
      if (value != kLlunValue) ++frequency[std::string(value)];
    }
    if (frequency.size() <= 1) continue;  // already consistent
    ++stats_.classes_resolved;

    // Frequency cost-manager: unique maximum wins; tie => llun.
    size_t best_count = 0;
    size_t winners = 0;
    std::string winner;
    for (const auto& [value, count] : frequency) {
      if (count > best_count) {
        best_count = count;
        winners = 1;
        winner = value;
      } else if (count == best_count) {
        ++winners;
      }
    }
    const bool tie = winners != 1;
    for (size_t row : rows) {
      std::string_view value = relation->value(row, fd.rhs);
      if (tie) {
        if (value != kLlunValue) {
          relation->RepairCell(row, fd.rhs, kLlunValue);
          ++stats_.lluns;
          ++changed;
        }
      } else if (value != winner) {
        relation->RepairCell(row, fd.rhs, winner);
        ++stats_.repairs;
        ++changed;
      }
    }
  }
  return changed;
}

Status LlunaticRepairer::Repair(Relation* relation) {
  std::vector<BoundFd> bound;
  bound.reserve(fds_.size());
  for (const FunctionalDependency& fd : fds_) {
    ASSIGN_OR_RETURN(BoundFd b, BindFd(fd, relation->schema()));
    bound.push_back(b);
  }
  for (size_t round = 0; round < options_.max_rounds; ++round) {
    ++stats_.rounds;
    size_t changed = 0;
    for (const BoundFd& fd : bound) changed += ChaseRound(relation, fd);
    if (changed == 0) break;
  }
  return Status::OK();
}

}  // namespace detective
