#ifndef DETECTIVE_SERVE_ROUTER_H_
#define DETECTIVE_SERVE_ROUTER_H_

// HTTP surface of detective_serve (docs/serving.md): binds the v1 endpoints
// to a CleaningService on an obs::HttpServer. Registration must happen
// before HttpServer::Start().
//
//   POST /v1/clean-tuple   JSON {"deadline_ms": N, "tuple": {col: value}}
//                          -> JSON outcome (200 even when degraded)
//   POST /v1/clean-table   CSV body (header row = schema), ?deadline_ms=N
//                          -> repaired CSV; X-Detective-* response headers
//   GET  /v1/explain       ?id=r-N&row=R&column=C -> provenance records
//   GET  /v1/rules         the frozen rule set, names + column footprints
//   GET  /readyz           200 once serving, 503 while loading or draining
//
// Error mapping (the request-level contract tests/serve_test.cc asserts):
// malformed JSON/CSV or a schema mismatch → 400; X-Detective-Fault-Plan
// without --allow-fault-header → 403; unknown explain id → 404; queue full →
// 429 + Retry-After; not ready / draining → 503 + Retry-After; a request
// that trips its deadline or an injected repair fault → 200 with
// degraded:true and the quarantine ledger (degradation is an outcome, not an
// error); a panic past the guarded path → 500 from the HTTP layer.

#include "obs/http_server.h"
#include "serve/service.h"

namespace detective::serve {

/// Registers every endpoint above on `server`. Both pointers must outlive
/// the server's serving threads.
void RegisterServiceHandlers(obs::HttpServer* server,
                             CleaningService* service);

}  // namespace detective::serve

#endif  // DETECTIVE_SERVE_ROUTER_H_
