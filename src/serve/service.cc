#include "serve/service.h"

#include <chrono>
#include <exception>
#include <future>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analysis/rule_lint.h"
#include "common/log.h"
#include "common/metrics.h"
#include "core/rule_io.h"
#include "kb/ntriples_parser.h"
#include "kb/snapshot.h"

namespace detective::serve {

namespace {

/// Same default as ParallelRepairOptions::cache_capacity: the shared
/// candidate cache is sized for a batch run and a resident service alike.
constexpr size_t kCacheCapacity = 1 << 20;

/// The per-request fault probe. Sits between admission and repair, so a
/// plan targeting serve.request fails exactly one request: the Status
/// becomes an exception, the exception is marshalled to the connection
/// thread, and the HTTP layer answers 500 while the worker lives on.
Status ProbeServeRequest() {
  DETECTIVE_FAULT_POINT("serve.request");
  return Status::OK();
}

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

CleaningService::CleaningService() = default;

CleaningService::~CleaningService() { Shutdown(); }

Status CleaningService::Init(ServiceOptions options) {
  options_ = std::move(options);
  if (options_.workers == 0) {
    options_.workers =
        std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  if (options_.schema_columns.empty()) {
    return Status::InvalidArgument("serve: schema has no columns");
  }
  schema_ = Schema(options_.schema_columns);

  // --kb-snapshot insists on the binary format; a kb_path file is
  // magic-sniffed, so a snapshot passed there mmap-loads too.
  const bool snapshot_requested = !options_.kb_snapshot_path.empty();
  const std::string& kb_input =
      snapshot_requested ? options_.kb_snapshot_path : options_.kb_path;
  bool kb_is_snapshot = snapshot_requested;
  if (!snapshot_requested) {
    if (auto sniff = FileHasKbSnapshotMagic(kb_input); sniff.ok()) {
      kb_is_snapshot = *sniff;
    }
  }
  const auto kb_load_start = std::chrono::steady_clock::now();
  auto kb = kb_is_snapshot ? LoadKbSnapshot(kb_input) : LoadKbFile(kb_input);
  if (!kb.ok()) {
    rejected_snapshot_ = kb_is_snapshot && kb.status().IsParseError();
    return Status::InvalidArgument("serve: cannot load KB " + kb_input + ": " +
                                   kb.status().ToString());
  }
  kb_.emplace(std::move(*kb));
  kb_source_ = kb_is_snapshot ? "snapshot" : "text";
  kb_load_ms_ = ElapsedMs(kb_load_start);
  logs::Info("serve", "kb_loaded",
             "KB loaded from " + kb_source_ + " in " +
                 std::to_string(kb_load_ms_) + " ms",
             {{"path", kb_input}, {"source", kb_source_}});

  auto rules = ParseRulesFile(options_.rules_path);
  if (!rules.ok()) {
    return Status::InvalidArgument("serve: cannot load rules " +
                                   options_.rules_path + ": " +
                                   rules.status().ToString());
  }
  rules_ = std::move(*rules);

  // Static lint gate, same contract as detective_clean: warn logs, strict
  // refuses to serve (the CLI maps rejected_by_analysis_ to exit 3).
  if (options_.lint != "off") {
    analysis::DiagnosticReport lint = analysis::LintRules(rules_, *kb_);
    lint.SortBySeverity();
    if (!lint.empty()) {
      logs::Warn("serve", "lint_findings", lint.ToString(),
                 {{"errors", lint.errors()}});
      if (options_.lint == "strict" && !lint.clean()) {
        rejected_by_analysis_ = true;
        return Status::InvalidArgument(
            "serve: rule set rejected: " + std::to_string(lint.errors()) +
            " error-level lint finding(s) under --lint=strict");
      }
    }
  }

  // Stratification is computed once and frozen with the rules; every
  // request reuses the same schedule, so served bytes match a batch run
  // made with the same flags.
  if (options_.stratify != "off") {
    auto computed = analysis::ComputeStratification(rules_, *kb_);
    if (computed.ok()) {
      strata_ = std::move(*computed);
      if (options_.stratify == "strict" &&
          strata_->certificate.num_cyclic_strata() > 0) {
        rejected_by_analysis_ = true;
        return Status::InvalidArgument(
            "serve: rule set rejected: " +
            std::to_string(strata_->certificate.num_cyclic_strata()) +
            " stratum/strata remain cyclic under --stratify=strict");
      }
    } else if (options_.stratify == "strict") {
      rejected_by_analysis_ = true;
      return Status::InvalidArgument(
          "serve: rule set rejected: cannot be certified under "
          "--stratify=strict: " +
          computed.status().ToString());
    } else {
      logs::Warn("serve", "stratify_unavailable",
                 "stratification unavailable (" +
                     computed.status().ToString() +
                     "); serving the classic chase loop");
    }
  }

  repair_options_.tuple_budget_ms = options_.tuple_budget_ms;
  if (strata_.has_value()) repair_options_.schedule = &strata_->schedule;
  // Note what is absent: max_rule_failures. The per-rule circuit breaker
  // mutates engine rule state, which would leak one request's failures into
  // the next and break both isolation and byte-identity — unsupported here.

  // Validate the binding once, then freeze the shared match plan and
  // candidate cache (the ParallelRepair startup sequence, done once per
  // process instead of once per run).
  {
    RuleEngine probe(*kb_, schema_, rules_, repair_options_);
    RETURN_NOT_OK(probe.Init());
    usable_rules_ = probe.num_usable_rules();
    if (repair_options_.matcher.use_signature_index) {
      plan_ = MatchPlan::Build(*kb_, probe.bound_rules(), options_.workers);
      plan_built_ = true;
    }
  }
  if (repair_options_.matcher.use_value_memo) {
    cache_ = std::make_unique<SharedCandidateCache>(kCacheCapacity);
  }

  repairers_.reserve(options_.workers);
  for (size_t worker = 0; worker < options_.workers; ++worker) {
    auto repairer = std::make_unique<FastRepairer>(*kb_, schema_, rules_,
                                                   repair_options_);
    RETURN_NOT_OK(repairer->Init());
    repairer->engine().SetShared(plan_built_ ? &plan_ : nullptr, cache_.get());
    repairers_.push_back(std::move(repairer));
  }

  admission_ = std::make_unique<AdmissionController>(options_.workers);
  pool_ = std::make_unique<BoundedWorkerPool>(options_.workers,
                                              options_.queue_capacity);
  return Status::OK();
}

CleaningService::Admit CleaningService::CleanTuple(
    std::vector<std::string> values, uint64_t deadline_ms,
    fault::FaultPlan fault_plan, TupleOutcome* out, uint64_t* retry_after_s) {
  out->request_id = NextRequestId();
  return Execute(
      deadline_ms, std::move(fault_plan), out->request_id,
      [&values, out](FastRepairer& repairer, Deadline request_deadline) {
        Tuple tuple(std::move(values));
        repairer.RepairTupleGuarded(/*row=*/0, request_deadline, &tuple,
                                    &out->quarantine);
        out->tuple = std::move(tuple);
        out->quarantine.Canonicalize();
        out->degraded = !out->quarantine.empty();
      },
      retry_after_s);
}

CleaningService::Admit CleaningService::CleanTable(Relation relation,
                                                   uint64_t deadline_ms,
                                                   fault::FaultPlan fault_plan,
                                                   TableOutcome* out,
                                                   uint64_t* retry_after_s) {
  out->request_id = NextRequestId();
  out->rows = relation.num_tuples();
  return Execute(
      deadline_ms, std::move(fault_plan), out->request_id,
      [this, &relation, out](FastRepairer& repairer,
                             Deadline request_deadline) {
        for (size_t row = 0; row < relation.num_tuples(); ++row) {
          // Re-tightened per row: a drain beginning mid-request caps the
          // remaining rows at the drain grace instead of letting one huge
          // table hold shutdown hostage. A tripped chase rolls the tuple
          // back to its checkout state, so committing it is a no-op.
          const Deadline effective = EffectiveDeadline(request_deadline);
          Tuple tuple = relation.tuple(row);
          repairer.RepairTupleGuarded(row, effective, &tuple,
                                      &out->quarantine);
          relation.CommitRow(row, tuple);
        }
        out->quarantine.Canonicalize();
        uint64_t last_row = 0;
        bool first = true;
        for (const QuarantineRecord& record : out->quarantine.records()) {
          if (first || record.row != last_row) ++out->rows_quarantined;
          last_row = record.row;
          first = false;
        }
        out->degraded = !out->quarantine.empty();
        out->csv = relation.ToCsv();
      },
      retry_after_s);
}

CleaningService::Admit CleaningService::Execute(
    uint64_t deadline_ms, fault::FaultPlan fault_plan,
    const std::string& request_id,
    const std::function<void(FastRepairer&, Deadline)>& work,
    uint64_t* retry_after_s) {
  const uint64_t effective_ms =
      deadline_ms > 0 ? deadline_ms : options_.default_deadline_ms;
  // Armed at admission, before the queue: time spent waiting for a worker
  // counts against the request's budget, so a deadline is a promise about
  // response time, not just repair time.
  const Deadline request_deadline = effective_ms > 0
                                        ? Deadline::AfterMs(effective_ms)
                                        : Deadline::Infinite();
  const auto start = std::chrono::steady_clock::now();

  std::promise<void> done;
  std::future<void> finished = done.get_future();
  // Reference captures are safe: Submit either refuses the job outright or
  // this thread blocks on `finished` until the job ran to completion.
  const bool submitted = pool_->Submit([this, &fault_plan, &request_deadline,
                                        &request_id, &work,
                                        &done](size_t worker) {
    FastRepairer& repairer = *repairers_[worker];
    try {
      // Thread-scoped chaos: the request's plan arms only this worker for
      // only this job; concurrent requests chase un-faulted.
      fault::ScopedThreadPlan scoped(std::move(fault_plan));
      ProvenanceLog provenance;
      repairer.engine().set_provenance(&provenance);
      Status probe = ProbeServeRequest();
      if (!probe.ok()) {
        throw std::runtime_error("request fault injected: " +
                                 probe.ToString());
      }
      work(repairer, request_deadline);
      repairer.engine().set_provenance(nullptr);
      provenance.Canonicalize();
      StoreExplain(request_id, std::move(provenance));
      done.set_value();
    } catch (...) {
      repairer.engine().set_provenance(nullptr);
      done.set_exception(std::current_exception());
    }
  });

  if (!submitted) {
    admission_->RecordShed();
    DETECTIVE_COUNT("serve.requests_shed");
    if (retry_after_s != nullptr) {
      *retry_after_s = admission_->RetryAfterSeconds(pool_->queued());
    }
    return Admit::kShed;
  }
  admission_->RecordAdmit();
  DETECTIVE_COUNT("serve.requests_admitted");
  finished.get();  // rethrows a job panic on the requesting thread
  admission_->RecordServiceMs(ElapsedMs(start));
  return Admit::kOk;
}

Deadline CleaningService::EffectiveDeadline(Deadline request_deadline) const {
  if (!draining()) return request_deadline;
  return Deadline::Earlier(request_deadline, drain_deadline_);
}

std::shared_ptr<const ProvenanceLog> CleaningService::Explain(
    const std::string& request_id) const {
  std::lock_guard<std::mutex> lock(explain_mutex_);
  auto it = explain_logs_.find(request_id);
  return it == explain_logs_.end() ? nullptr : it->second;
}

void CleaningService::BeginDrain(uint64_t grace_ms) {
  // Order matters: the deadline must be visible before draining_ flips,
  // because EffectiveDeadline reads them in the opposite order.
  drain_deadline_ = Deadline::AfterMs(grace_ms);
  draining_.store(true, std::memory_order_release);
  if (pool_) pool_->BeginDrain();
}

bool CleaningService::WaitIdle(uint64_t timeout_ms) {
  return pool_ == nullptr || pool_->WaitIdle(timeout_ms);
}

void CleaningService::Shutdown() {
  if (pool_) pool_->Shutdown();
}

std::string CleaningService::NextRequestId() {
  return "r-" + std::to_string(
                    next_request_.fetch_add(1, std::memory_order_relaxed) + 1);
}

void CleaningService::StoreExplain(const std::string& request_id,
                                   ProvenanceLog log) {
  if (options_.explain_capacity == 0) return;
  std::lock_guard<std::mutex> lock(explain_mutex_);
  while (explain_order_.size() >= options_.explain_capacity) {
    explain_logs_.erase(explain_order_.front());
    explain_order_.pop_front();
  }
  explain_logs_.emplace(request_id,
                        std::make_shared<ProvenanceLog>(std::move(log)));
  explain_order_.push_back(request_id);
}

}  // namespace detective::serve
