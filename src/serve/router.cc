#include "serve/router.h"

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json_util.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/string_util.h"
#include "core/rule.h"

namespace detective::serve {

namespace {

using obs::HttpRequest;
using obs::HttpResponse;

constexpr std::string_view kJsonType = "application/json; charset=utf-8";
constexpr std::string_view kCsvType = "text/csv; charset=utf-8";
constexpr std::string_view kFaultPlanHeader = "X-Detective-Fault-Plan";

HttpResponse Error(int status, std::string_view message) {
  HttpResponse response;
  response.status = status;
  response.body = std::string(message);
  response.body.push_back('\n');
  return response;
}

HttpResponse ErrorWithRetry(int status, std::string_view message,
                            uint64_t retry_after_s) {
  HttpResponse response = Error(status, message);
  response.extra_headers =
      "Retry-After: " + std::to_string(retry_after_s) + "\r\n";
  return response;
}

/// First value of `key` in an application/x-www-form-urlencoded query
/// string. No percent-decoding: every value this API accepts in a query
/// (request ids, row numbers, column names) is emitted verbatim by us.
std::optional<std::string_view> QueryParam(std::string_view query,
                                           std::string_view key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(pos, end - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = end + 1;
  }
  return std::nullopt;
}

/// The request body of POST /v1/clean-tuple.
struct TupleRequest {
  uint64_t deadline_ms = 0;
  std::vector<std::string> values;  // schema order
};

/// Parses {"deadline_ms": N, "tuple": {"Col": "value", ...}} — keys in any
/// order, deadline_ms optional, every schema column required exactly once.
Status ParseTupleRequest(std::string_view body, const Schema& schema,
                         TupleRequest* out) {
  out->values.assign(schema.num_columns(), std::string());
  std::vector<char> seen(schema.num_columns(), 0);
  bool have_tuple = false;
  JsonCursor cursor(body);
  RETURN_NOT_OK(cursor.Expect('{'));
  if (!cursor.TryConsume('}')) {
    do {
      ASSIGN_OR_RETURN(std::string key, cursor.TakeString());
      RETURN_NOT_OK(cursor.Expect(':'));
      if (key == "deadline_ms") {
        ASSIGN_OR_RETURN(out->deadline_ms, cursor.TakeUint());
      } else if (key == "tuple") {
        have_tuple = true;
        RETURN_NOT_OK(cursor.Expect('{'));
        if (!cursor.TryConsume('}')) {
          do {
            ASSIGN_OR_RETURN(std::string column, cursor.TakeString());
            RETURN_NOT_OK(cursor.Expect(':'));
            ASSIGN_OR_RETURN(std::string value, cursor.TakeString());
            const ColumnIndex index = schema.FindColumn(column);
            if (index == kInvalidColumn) {
              return Status::InvalidArgument("unknown column \"" + column +
                                             "\"");
            }
            if (seen[index] != 0) {
              return Status::InvalidArgument("duplicate column \"" + column +
                                             "\"");
            }
            seen[index] = 1;
            out->values[index] = std::move(value);
          } while (cursor.TryConsume(','));
          RETURN_NOT_OK(cursor.Expect('}'));
        }
      } else {
        return Status::InvalidArgument("unknown field \"" + key + "\"");
      }
    } while (cursor.TryConsume(','));
    RETURN_NOT_OK(cursor.Expect('}'));
  }
  RETURN_NOT_OK(cursor.ExpectEnd());
  if (!have_tuple) return Status::InvalidArgument("missing \"tuple\" object");
  for (ColumnIndex i = 0; i < schema.num_columns(); ++i) {
    if (seen[i] == 0) {
      return Status::InvalidArgument("missing column \"" +
                                     schema.column_name(i) + "\"");
    }
  }
  return Status::OK();
}

void AppendQuarantineArray(const QuarantineLog& quarantine, std::string* out) {
  out->push_back('[');
  bool first = true;
  for (const QuarantineRecord& record : quarantine.records()) {
    if (!first) out->push_back(',');
    first = false;
    out->append(record.ToJson());
  }
  out->push_back(']');
}

std::string RenderTupleOutcome(const Schema& schema,
                               const TupleOutcome& outcome) {
  std::string json = "{\"request_id\":";
  AppendJsonString(outcome.request_id, &json);
  json.append(",\"degraded\":");
  json.append(outcome.degraded ? "true" : "false");
  json.append(",\"tuple\":{");
  for (ColumnIndex i = 0; i < schema.num_columns(); ++i) {
    if (i != 0) json.push_back(',');
    AppendJsonString(schema.column_name(i), &json);
    json.push_back(':');
    AppendJsonString(outcome.tuple.value(i), &json);
  }
  json.append("},\"repaired\":[");
  bool first = true;
  for (ColumnIndex i = 0; i < schema.num_columns(); ++i) {
    if (!outcome.tuple.WasRepaired(i)) continue;
    if (!first) json.push_back(',');
    first = false;
    json.append("{\"column\":");
    AppendJsonString(schema.column_name(i), &json);
    json.append(",\"from\":");
    AppendJsonString(outcome.tuple.OriginalValue(i), &json);
    json.append(",\"to\":");
    AppendJsonString(outcome.tuple.value(i), &json);
    json.push_back('}');
  }
  json.append("],\"positive\":[");
  first = true;
  for (ColumnIndex i = 0; i < schema.num_columns(); ++i) {
    if (!outcome.tuple.IsPositive(i)) continue;
    if (!first) json.push_back(',');
    first = false;
    AppendJsonString(schema.column_name(i), &json);
  }
  json.append("],\"quarantine\":");
  AppendQuarantineArray(outcome.quarantine, &json);
  json.push_back('}');
  json.push_back('\n');
  return json;
}

/// The 503 every request-taking endpoint answers before MarkReady() and
/// after drain starts; null when the service is taking requests.
std::optional<HttpResponse> RefuseIfUnavailable(const CleaningService& service) {
  if (service.ready()) return std::nullopt;
  return ErrorWithRetry(503, service.draining() ? "draining" : "loading",
                        /*retry_after_s=*/1);
}

/// Resolves the per-request fault plan: absent header → empty plan; header
/// without --allow-fault-header → 403; malformed plan → 400.
Result<fault::FaultPlan> ResolveFaultPlan(const HttpRequest& request,
                                          const CleaningService& service,
                                          HttpResponse* refusal) {
  const std::string_view spec = request.header(kFaultPlanHeader);
  if (spec.empty()) return fault::FaultPlan{};
  if (!service.options().allow_fault_header) {
    *refusal = Error(403, "fault plans are not allowed on this server "
                          "(start with --allow-fault-header)");
    return Status::InvalidArgument("fault header refused");
  }
  auto plan = fault::FaultPlan::Parse(spec);
  if (!plan.ok()) {
    *refusal = Error(400, "bad " + std::string(kFaultPlanHeader) + ": " +
                              plan.status().ToString());
    return plan.status();
  }
  return *plan;
}

HttpResponse HandleCleanTuple(CleaningService* service,
                              const HttpRequest& request) {
  DETECTIVE_COUNT("serve.http.clean_tuple");
  if (auto refusal = RefuseIfUnavailable(*service)) return *refusal;
  HttpResponse refusal;
  auto plan = ResolveFaultPlan(request, *service, &refusal);
  if (!plan.ok()) return refusal;
  TupleRequest parsed;
  Status status = ParseTupleRequest(request.body, service->schema(), &parsed);
  if (!status.ok()) return Error(400, status.ToString());

  TupleOutcome outcome;
  uint64_t retry_after_s = 1;
  const CleaningService::Admit admit =
      service->CleanTuple(std::move(parsed.values), parsed.deadline_ms,
                          std::move(*plan), &outcome, &retry_after_s);
  if (admit == CleaningService::Admit::kShed) {
    return ErrorWithRetry(429, "queue full", retry_after_s);
  }
  HttpResponse response;
  response.content_type = std::string(kJsonType);
  response.body = RenderTupleOutcome(service->schema(), outcome);
  return response;
}

HttpResponse HandleCleanTable(CleaningService* service,
                              const HttpRequest& request) {
  DETECTIVE_COUNT("serve.http.clean_table");
  if (auto refusal = RefuseIfUnavailable(*service)) return *refusal;
  HttpResponse refusal;
  auto plan = ResolveFaultPlan(request, *service, &refusal);
  if (!plan.ok()) return refusal;
  uint64_t deadline_ms = 0;
  if (auto raw = QueryParam(request.query, "deadline_ms")) {
    if (!ParseUint64(*raw, &deadline_ms)) {
      return Error(400, "bad deadline_ms");
    }
  }
  auto relation = Relation::FromCsv(request.body);
  if (!relation.ok()) {
    return Error(400, "bad CSV: " + relation.status().ToString());
  }
  if (relation->schema() != service->schema()) {
    return Error(400, "CSV header does not match the serving schema");
  }

  TableOutcome outcome;
  uint64_t retry_after_s = 1;
  const CleaningService::Admit admit =
      service->CleanTable(std::move(*relation), deadline_ms, std::move(*plan),
                          &outcome, &retry_after_s);
  if (admit == CleaningService::Admit::kShed) {
    return ErrorWithRetry(429, "queue full", retry_after_s);
  }
  HttpResponse response;
  response.content_type = std::string(kCsvType);
  response.body = std::move(outcome.csv);
  response.extra_headers =
      "X-Detective-Request-Id: " + outcome.request_id +
      "\r\nX-Detective-Degraded: " +
      (outcome.degraded ? "true" : "false") +
      "\r\nX-Detective-Quarantined: " +
      std::to_string(outcome.rows_quarantined) + "\r\n";
  return response;
}

HttpResponse HandleExplain(CleaningService* service,
                           const HttpRequest& request) {
  DETECTIVE_COUNT("serve.http.explain");
  const auto id = QueryParam(request.query, "id");
  const auto row_raw = QueryParam(request.query, "row");
  const auto column = QueryParam(request.query, "column");
  if (!id || !row_raw || !column) {
    return Error(400, "required query parameters: id, row, column");
  }
  uint64_t row = 0;
  if (!ParseUint64(*row_raw, &row)) return Error(400, "bad row");
  const auto log = service->Explain(std::string(*id));
  if (log == nullptr) {
    return Error(404, "unknown or evicted request id");
  }
  std::string json = "{\"request_id\":";
  AppendJsonString(*id, &json);
  json.append(",\"records\":[");
  bool first = true;
  for (const RepairProvenance* record : log->ForCell(row, *column)) {
    if (!first) json.push_back(',');
    first = false;
    json.append(record->ToJson());
  }
  json.append("]}\n");
  HttpResponse response;
  response.content_type = std::string(kJsonType);
  response.body = std::move(json);
  return response;
}

HttpResponse HandleRules(CleaningService* service, const HttpRequest&) {
  const std::vector<DetectiveRule>& rules = service->rules();
  std::string json =
      "{\"total\":" + std::to_string(rules.size()) +
      ",\"usable\":" + std::to_string(service->num_usable_rules()) +
      ",\"rules\":[";
  bool first = true;
  for (const DetectiveRule& rule : rules) {
    if (!first) json.push_back(',');
    first = false;
    json.append("{\"name\":");
    AppendJsonString(rule.name(), &json);
    json.append(",\"target\":");
    AppendJsonString(rule.TargetColumn(), &json);
    json.append(",\"evidence\":[");
    bool first_col = true;
    for (const std::string& column : rule.EvidenceColumns()) {
      if (!first_col) json.push_back(',');
      first_col = false;
      AppendJsonString(column, &json);
    }
    json.append("]}");
  }
  json.append("]}\n");
  HttpResponse response;
  response.content_type = std::string(kJsonType);
  response.body = std::move(json);
  return response;
}

HttpResponse HandleReadyz(CleaningService* service, const HttpRequest&) {
  if (service->ready()) {
    // Exact keys are schema-checked by tools/check_serve_response.py
    // --kind=readyz; kb_source tells an operator whether the cold start
    // mmap-loaded a snapshot or fell back to parsing N-triples text.
    char load_ms[32];
    std::snprintf(load_ms, sizeof(load_ms), "%.3f", service->kb_load_ms());
    std::string json = "{\"status\":\"ready\",\"kb_source\":";
    AppendJsonString(service->kb_source(), &json);
    json.append(",\"kb_load_ms\":");
    json.append(load_ms);
    json.append("}\n");
    HttpResponse response;
    response.content_type = std::string(kJsonType);
    response.body = std::move(json);
    return response;
  }
  return ErrorWithRetry(503, service->draining() ? "draining" : "loading",
                        /*retry_after_s=*/1);
}

}  // namespace

void RegisterServiceHandlers(obs::HttpServer* server,
                             CleaningService* service) {
  server->Handle("POST", "/v1/clean-tuple",
                 [service](const HttpRequest& request) {
                   return HandleCleanTuple(service, request);
                 });
  server->Handle("POST", "/v1/clean-table",
                 [service](const HttpRequest& request) {
                   return HandleCleanTable(service, request);
                 });
  server->Handle("/v1/explain", [service](const HttpRequest& request) {
    return HandleExplain(service, request);
  });
  server->Handle("/v1/rules", [service](const HttpRequest& request) {
    return HandleRules(service, request);
  });
  server->Handle("/readyz", [service](const HttpRequest& request) {
    return HandleReadyz(service, request);
  });
}

}  // namespace detective::serve
