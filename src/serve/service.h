#ifndef DETECTIVE_SERVE_SERVICE_H_
#define DETECTIVE_SERVE_SERVICE_H_

// The resident cleaning service behind detective_serve: loads KB + rules
// once, freezes the MatchPlan and the 64-way sharded candidate cache at
// startup, and answers cleaning requests from a fixed pool of per-worker
// FastRepairers fed by a bounded queue (serve/worker_pool.h).
//
// The failure domain is one request, never the process:
//   - Per-request deadlines thread into guarded repair (common/deadline.h);
//     an expired deadline quarantines remaining rows — the response is still
//     HTTP 200, marked degraded, mirroring the batch exit-4 contract. The
//     paper's §V independence argument (repairing one tuple is irrelevant
//     to any other) is what makes per-tuple abandonment sound.
//   - Per-request fault plans (X-Detective-Fault-Plan) arm a thread-scoped
//     injector (fault::ScopedThreadPlan) on the worker running the request;
//     concurrent requests are untouched.
//   - A full queue sheds the request (429 + Retry-After upstairs) instead of
//     growing without bound (serve/admission.h).
//   - A panicking job is marshalled back to the requesting thread and
//     answered 500 by the HTTP layer; workers and the daemon survive.
//
// Cross-request isolation invariants (why repairers are reusable): the KB,
// schema, bound rules, match plan, and stratification schedule are immutable
// after Init; the shared candidate cache memoizes pure functions; Tuple
// working copies carry all per-row chase state; and the per-rule circuit
// breaker is deliberately unsupported here (it mutates engine rule state
// across requests). Repaired bytes are therefore identical to a fresh
// single-threaded batch run at any worker count.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "analysis/stratification.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/status.h"
#include "core/match_plan.h"
#include "core/provenance.h"
#include "core/quarantine.h"
#include "core/repair.h"
#include "kb/knowledge_base.h"
#include "relation/relation.h"
#include "serve/admission.h"
#include "serve/worker_pool.h"

namespace detective::serve {

struct ServiceOptions {
  std::string kb_path;
  /// Binary KB snapshot (kb/snapshot.h) instead of kb_path text. A snapshot
  /// passed as kb_path is magic-sniffed and loads the fast path too; this
  /// field exists so operators can insist on it (a rejected snapshot sets
  /// rejected_snapshot() and the CLI exits 64 instead of re-parsing text).
  std::string kb_snapshot_path;
  std::string rules_path;
  /// Frozen relation schema; requests must match it exactly.
  std::vector<std::string> schema_columns;
  /// Repair workers (one FastRepairer each); 0 = hardware concurrency.
  size_t workers = 1;
  /// Bounded request queue capacity; a full queue sheds (429).
  size_t queue_capacity = 32;
  /// Deadline applied when a request names none (0 = none).
  uint64_t default_deadline_ms = 0;
  /// Per-tuple chase budget (0 = none); quarantines with "tuple_budget".
  uint64_t tuple_budget_ms = 0;
  /// Static lint gate at startup: off|warn|strict (docs/static_analysis.md).
  std::string lint = "warn";
  /// Stratified scheduling: off|auto|strict.
  std::string stratify = "auto";
  /// Honor X-Detective-Fault-Plan request headers (chaos testing only).
  bool allow_fault_header = false;
  /// Provenance logs of the most recent requests kept for /v1/explain.
  size_t explain_capacity = 64;
};

/// Result of one clean-tuple request.
struct TupleOutcome {
  std::string request_id;
  bool degraded = false;
  Tuple tuple;  // repaired working copy (pristine when quarantined)
  QuarantineLog quarantine;
};

/// Result of one clean-table request.
struct TableOutcome {
  std::string request_id;
  bool degraded = false;
  size_t rows = 0;
  size_t rows_quarantined = 0;
  std::string csv;  // repaired relation, CSV bytes (ToCsv)
  QuarantineLog quarantine;
};

class CleaningService {
 public:
  CleaningService();
  ~CleaningService();

  CleaningService(const CleaningService&) = delete;
  CleaningService& operator=(const CleaningService&) = delete;

  /// Loads and freezes everything. Not ready until this returns OK and
  /// MarkReady() is called (after the listener is up).
  Status Init(ServiceOptions options);

  /// True when Init failed because --lint=strict or --stratify=strict
  /// rejected the rule set (the CLI maps this to exit 3, like the batch
  /// tool, instead of the generic runtime failure).
  bool rejected_by_analysis() const { return rejected_by_analysis_; }

  /// True when Init failed because the KB snapshot was rejected (bad
  /// magic/version/checksum/structure); the CLI maps this to exit 64.
  bool rejected_snapshot() const { return rejected_snapshot_; }

  /// Where the KB came from ("snapshot" | "text") and how long the load
  /// took; surfaced by /readyz so operators can see a cold start that fell
  /// back to text parsing.
  const std::string& kb_source() const { return kb_source_; }
  double kb_load_ms() const { return kb_load_ms_; }

  const ServiceOptions& options() const { return options_; }
  const Schema& schema() const { return schema_; }
  const std::vector<DetectiveRule>& rules() const { return rules_; }
  size_t num_usable_rules() const { return usable_rules_; }

  /// Flipped by the CLI once the listener is accepting; /readyz gates on it.
  void MarkReady() { ready_.store(true, std::memory_order_release); }
  bool ready() const {
    return ready_.load(std::memory_order_acquire) && !draining();
  }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Admission outcome of one cleaning request.
  enum class Admit : uint8_t { kOk, kShed };

  /// Cleans one tuple (`values` in schema order). Blocks the calling thread
  /// until a worker finishes the job. kShed (with *retry_after_s set) when
  /// the queue is full. Throws whatever the job panicked with — the HTTP
  /// layer catches and answers 500.
  Admit CleanTuple(std::vector<std::string> values, uint64_t deadline_ms,
                   fault::FaultPlan fault_plan, TupleOutcome* out,
                   uint64_t* retry_after_s);

  /// Cleans a whole relation (already validated against schema()).
  Admit CleanTable(Relation relation, uint64_t deadline_ms,
                   fault::FaultPlan fault_plan, TableOutcome* out,
                   uint64_t* retry_after_s);

  /// Provenance log of a recent request, or null when unknown/evicted.
  std::shared_ptr<const ProvenanceLog> Explain(
      const std::string& request_id) const;

  const AdmissionController& admission() const { return *admission_; }
  size_t queued() const { return pool_ ? pool_->queued() : 0; }

  /// Graceful drain: stop reporting ready and tighten every in-flight
  /// request's remaining row deadlines to at most `grace_ms` from now, so
  /// drain completes within the operator's budget (rows past the tightened
  /// deadline are quarantined, mirroring a deadline-exceeded request).
  void BeginDrain(uint64_t grace_ms);

  /// True when the pool went idle within `timeout_ms`.
  bool WaitIdle(uint64_t timeout_ms);

  /// Runs down the queue and joins the workers. Idempotent.
  void Shutdown();

 private:
  /// Common request path: admission, per-request fault scope, provenance
  /// capture, panic marshalling. `work` runs on a pool worker.
  Admit Execute(
      uint64_t deadline_ms, fault::FaultPlan fault_plan,
      const std::string& request_id,
      const std::function<void(FastRepairer&, Deadline)>& work,
      uint64_t* retry_after_s);

  /// The request deadline, tightened by the drain deadline when draining.
  Deadline EffectiveDeadline(Deadline request_deadline) const;

  std::string NextRequestId();
  void StoreExplain(const std::string& request_id, ProvenanceLog log);

  ServiceOptions options_;
  Schema schema_;
  std::optional<KnowledgeBase> kb_;
  std::vector<DetectiveRule> rules_;
  size_t usable_rules_ = 0;
  bool rejected_by_analysis_ = false;
  bool rejected_snapshot_ = false;
  std::string kb_source_ = "text";
  double kb_load_ms_ = 0;
  std::optional<analysis::Stratification> strata_;
  RepairOptions repair_options_;
  MatchPlan plan_;
  bool plan_built_ = false;
  std::unique_ptr<SharedCandidateCache> cache_;
  std::vector<std::unique_ptr<FastRepairer>> repairers_;
  std::unique_ptr<BoundedWorkerPool> pool_;
  std::unique_ptr<AdmissionController> admission_;

  std::atomic<bool> ready_{false};
  std::atomic<bool> draining_{false};
  Deadline drain_deadline_;  // written before draining_ flips true

  std::atomic<uint64_t> next_request_{0};

  mutable std::mutex explain_mutex_;
  std::map<std::string, std::shared_ptr<const ProvenanceLog>> explain_logs_;
  std::deque<std::string> explain_order_;  // FIFO eviction
};

}  // namespace detective::serve

#endif  // DETECTIVE_SERVE_SERVICE_H_
