#ifndef DETECTIVE_SERVE_ADMISSION_H_
#define DETECTIVE_SERVE_ADMISSION_H_

// Admission control for detective_serve: the bounded worker-pool queue is
// the hard limit, this controller is the advisory layer on top — it tracks
// an EWMA of request service time so a shed response can carry an honest
// Retry-After estimate (how long until the queue likely has room) instead of
// a constant, and it counts sheds for metrics/bench.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace detective::serve {

class AdmissionController {
 public:
  /// `workers` is the pool size the drain-rate estimate divides by (min 1).
  explicit AdmissionController(size_t workers);

  /// Records one completed request's wall service time (queue wait +
  /// repair), updating the EWMA.
  void RecordServiceMs(double ms);

  /// Records one shed request (queue full → 429).
  void RecordShed();
  uint64_t sheds() const { return sheds_.load(std::memory_order_relaxed); }

  /// Requests admitted (for the shed-rate metric).
  void RecordAdmit();
  uint64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }

  /// Suggested Retry-After in whole seconds when shedding while `queued`
  /// jobs wait: the estimated time for the pool to drain the current queue,
  /// clamped to [1, 30]. Before any sample it answers 1.
  uint64_t RetryAfterSeconds(size_t queued) const;

 private:
  mutable std::mutex mutex_;
  size_t workers_;
  double ewma_ms_ = 0.0;  // 0 = no sample yet
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> admitted_{0};
};

}  // namespace detective::serve

#endif  // DETECTIVE_SERVE_ADMISSION_H_
