#ifndef DETECTIVE_SERVE_WORKER_POOL_H_
#define DETECTIVE_SERVE_WORKER_POOL_H_

// Fixed-size worker pool fed by a bounded job queue — the execution engine
// of detective_serve. The capacity bound is the service's admission control:
// Submit() refuses (rather than queues unboundedly) when the queue is full,
// and the router answers 429 from that signal. Workers are indexed so the
// service can pin per-worker state (one FastRepairer each) without locking.
//
// Shutdown is graceful by construction: BeginDrain() stops admission while
// queued and in-flight jobs keep running (their per-request deadlines bound
// how long that takes), WaitIdle() observes completion, Shutdown() joins.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace detective::serve {

class BoundedWorkerPool {
 public:
  /// A unit of work; receives the index of the worker running it
  /// (0 .. workers-1), stable for the pool's lifetime.
  using Job = std::function<void(size_t worker_index)>;

  /// Spawns `workers` threads (min 1) over a queue of `queue_capacity`
  /// (min 1) waiting jobs.
  BoundedWorkerPool(size_t workers, size_t queue_capacity);
  ~BoundedWorkerPool();

  BoundedWorkerPool(const BoundedWorkerPool&) = delete;
  BoundedWorkerPool& operator=(const BoundedWorkerPool&) = delete;

  /// Enqueues `job`; false when the queue is at capacity or the pool is
  /// draining/stopped — the caller sheds the request (429).
  bool Submit(Job job);

  /// Stops admitting new jobs; queued and in-flight jobs still complete.
  /// Idempotent.
  void BeginDrain();

  /// Blocks until no job is queued or running, or `timeout_ms` elapsed;
  /// true on idle.
  bool WaitIdle(uint64_t timeout_ms);

  /// BeginDrain + run down the queue + join all workers. Idempotent; the
  /// destructor calls it.
  void Shutdown();

  size_t workers() const { return threads_.size(); }
  size_t queue_capacity() const { return capacity_; }
  /// Snapshot of jobs waiting in the queue (excludes running jobs).
  size_t queued() const;
  /// Snapshot of jobs currently executing.
  size_t in_flight() const;

 private:
  void WorkerLoop(size_t index);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // signals work or shutdown
  std::condition_variable idle_cv_;  // signals the pool went idle
  std::deque<Job> queue_;
  size_t capacity_;
  size_t running_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace detective::serve

#endif  // DETECTIVE_SERVE_WORKER_POOL_H_
