#include "serve/admission.h"

#include <algorithm>
#include <cmath>

namespace detective::serve {

namespace {
/// EWMA weight of the newest sample: responsive enough to follow a load
/// shift within a few requests, smooth enough that one slow outlier does
/// not triple the advertised Retry-After.
constexpr double kAlpha = 0.2;
constexpr uint64_t kMinRetrySeconds = 1;
constexpr uint64_t kMaxRetrySeconds = 30;
}  // namespace

AdmissionController::AdmissionController(size_t workers)
    : workers_(std::max<size_t>(1, workers)) {}

void AdmissionController::RecordServiceMs(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  ewma_ms_ = ewma_ms_ == 0.0 ? ms : kAlpha * ms + (1.0 - kAlpha) * ewma_ms_;
}

void AdmissionController::RecordShed() {
  sheds_.fetch_add(1, std::memory_order_relaxed);
}

void AdmissionController::RecordAdmit() {
  admitted_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t AdmissionController::RetryAfterSeconds(size_t queued) const {
  double ewma_ms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ewma_ms = ewma_ms_;
  }
  if (ewma_ms <= 0.0) return kMinRetrySeconds;
  const double drain_ms =
      ewma_ms * (static_cast<double>(queued) + 1.0) /
      static_cast<double>(workers_);
  const double seconds = std::ceil(drain_ms / 1000.0);
  const auto rounded = static_cast<uint64_t>(std::max(seconds, 1.0));
  return std::clamp(rounded, kMinRetrySeconds, kMaxRetrySeconds);
}

}  // namespace detective::serve
