#include "serve/worker_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"

namespace detective::serve {

BoundedWorkerPool::BoundedWorkerPool(size_t workers, size_t queue_capacity)
    : capacity_(std::max<size_t>(1, queue_capacity)) {
  const size_t count = std::max<size_t>(1, workers);
  threads_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

BoundedWorkerPool::~BoundedWorkerPool() { Shutdown(); }

bool BoundedWorkerPool::Submit(Job job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || draining_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return true;
}

void BoundedWorkerPool::BeginDrain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  work_cv_.notify_all();
}

bool BoundedWorkerPool::WaitIdle(uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return idle_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [this] { return queue_.empty() && running_ == 0; });
}

void BoundedWorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    draining_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

size_t BoundedWorkerPool::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

size_t BoundedWorkerPool::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void BoundedWorkerPool::WorkerLoop(size_t index) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    // Last-resort isolation: the service wraps jobs so exceptions are
    // marshalled back to the requesting thread, but a worker must survive
    // anything that still escapes.
    try {
      job(index);
    } catch (...) {
      DETECTIVE_COUNT("serve.worker_panics");
      DETECTIVE_LOG_EVERY_N(16, logs::Level::kError, "serve", "worker_panic",
                            "job escaped its exception barrier",
                            {"worker", static_cast<uint64_t>(index)});
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace detective::serve
