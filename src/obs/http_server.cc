#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"

namespace detective::obs {

namespace {

/// Closes `fd` if valid and resets it to -1.
void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

/// Blocking send() of the whole buffer; false when the peer is gone.
/// MSG_NOSIGNAL: a reset connection must surface as EPIPE, not SIGPIPE.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Parses the request line "METHOD SP TARGET SP HTTP/x.y"; false on any
/// deviation (the caller answers 400).
bool ParseRequestLine(std::string_view line, HttpRequest* request) {
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return false;
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return false;
  request->method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t question = target.find('?');
  if (question == std::string_view::npos) {
    request->path = std::string(target);
    request->query.clear();
  } else {
    request->path = std::string(target.substr(0, question));
    request->query = std::string(target.substr(question + 1));
  }
  return true;
}

/// Case-insensitive ASCII comparison for header names/tokens.
bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

/// Scans the header block for "Connection: close" and for a message body
/// announcement (Content-Length/Transfer-Encoding). Bodies on GETs are not
/// supported: rather than desync the keep-alive framing, the connection is
/// closed after the response.
void ScanHeaders(std::string_view headers, bool* connection_close,
                 bool* has_body) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = headers.size();
    std::string_view line = headers.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view name = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    if (EqualsIgnoreCase(name, "connection") && EqualsIgnoreCase(value, "close")) {
      *connection_close = true;
    } else if (EqualsIgnoreCase(name, "content-length")) {
      if (value != "0") *has_body = true;
    } else if (EqualsIgnoreCase(name, "transfer-encoding")) {
      *has_body = true;
    }
  }
}

}  // namespace

std::string_view HttpStatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

HttpServer::HttpServer(HttpServerOptions options) : options_(options) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("introspection server already running on port ",
                                 port_.load());
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket(): ", std::strerror(errno));
  }
  // Loopback only: introspection is a local operator surface, never exposed
  // off-host. SO_REUSEADDR lets a restarted run rebind the same port while
  // the previous socket lingers in TIME_WAIT.
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IOError("bind(127.0.0.1:", options_.port,
                                    "): ", std::strerror(errno));
    CloseFd(&listen_fd_);
    return status;
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status status = Status::IOError("listen(): ", std::strerror(errno));
    CloseFd(&listen_fd_);
    return status;
  }
  // Resolve the ephemeral port before the caller can ask for it.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    Status status = Status::IOError("getsockname(): ", std::strerror(errno));
    CloseFd(&listen_fd_);
    return status;
  }
  if (::pipe(wake_pipe_) != 0) {
    Status status = Status::IOError("pipe(): ", std::strerror(errno));
    CloseFd(&listen_fd_);
    return status;
  }
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  stop_requested_.store(false, std::memory_order_release);
  requests_served_.store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  // Wake the poll(); the byte's value is irrelevant.
  char byte = 'q';
  [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  CloseFd(&listen_fd_);
  CloseFd(&wake_pipe_[0]);
  CloseFd(&wake_pipe_[1]);
  running_.store(false, std::memory_order_release);
}

void HttpServer::AcceptLoop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      DETECTIVE_LOG_EVERY_N(64, logs::Level::kWarn, "obs", "accept_poll_failed",
                            "introspection poll() failed",
                            {"error", std::strerror(errno)});
      break;
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      DETECTIVE_LOG_EVERY_N(64, logs::Level::kWarn, "obs", "accept_failed",
                            "introspection accept() failed",
                            {"error", std::strerror(errno)});
      continue;
    }
    DETECTIVE_COUNT("obs.http.connections");
    ServeConnection(conn);
    ::close(conn);
  }
}

void HttpServer::ServeConnection(int fd) {
  // Cap how long one read may stall; a trickling or half-sent request is
  // dropped rather than pinning the accept thread.
  timeval timeout{};
  timeout.tv_sec = static_cast<time_t>(options_.read_timeout_ms / 1000);
  timeout.tv_usec =
      static_cast<suseconds_t>((options_.read_timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  size_t served = 0;
  while (served < options_.max_requests_per_connection &&
         !stop_requested_.load(std::memory_order_acquire)) {
    // Read until one full request head is buffered. Pipelined requests can
    // already be waiting in `buffer` from the previous read.
    size_t head_end;
    while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      if (buffer.size() > options_.max_request_bytes) {
        DETECTIVE_COUNT("obs.http.oversized");
        SendResponse(fd, HttpRequest{},
                     HttpResponse{431, "text/plain; charset=utf-8",
                                  "request too large\n", {}},
                     /*close_connection=*/true);
        return;
      }
      char chunk[2048];
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) return;  // clean client close between requests
      if (n < 0) {
        if (errno == EINTR) continue;
        // Timeout (EAGAIN/EWOULDBLOCK) on a half-sent request, or a reset:
        // drop the connection. A 408 would race the client's own teardown.
        DETECTIVE_COUNT("obs.http.read_timeouts");
        return;
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    // The cap applies to complete heads too, not just ones still streaming
    // in — a single recv() can deliver the whole oversized head at once.
    if (head_end > options_.max_request_bytes) {
      DETECTIVE_COUNT("obs.http.oversized");
      SendResponse(fd, HttpRequest{},
                   HttpResponse{431, "text/plain; charset=utf-8",
                                "request too large\n", {}},
                   /*close_connection=*/true);
      return;
    }

    std::string head = buffer.substr(0, head_end);
    buffer.erase(0, head_end + 4);
    ++served;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    DETECTIVE_COUNT("obs.http.requests");

    size_t line_end = head.find("\r\n");
    std::string_view request_line =
        std::string_view(head).substr(0, line_end);  // npos → whole head
    std::string_view headers =
        line_end == std::string::npos
            ? std::string_view()
            : std::string_view(head).substr(line_end + 2);
    bool connection_close = false;
    bool has_body = false;
    ScanHeaders(headers, &connection_close, &has_body);

    HttpRequest request;
    HttpResponse response;
    if (!ParseRequestLine(request_line, &request)) {
      DETECTIVE_COUNT("obs.http.bad_requests");
      SendResponse(fd, request,
                   HttpResponse{400, "text/plain; charset=utf-8",
                                "malformed request line\n", {}},
                   /*close_connection=*/true);
      return;
    }
    // A body would desync the pipelined framing below; answer, then close.
    if (has_body) connection_close = true;

    if (request.method != "GET") {
      DETECTIVE_COUNT("obs.http.bad_methods");
      response = HttpResponse{405, "text/plain; charset=utf-8",
                              "only GET is supported\n", "Allow: GET\r\n"};
    } else {
      auto it = handlers_.find(request.path);
      if (it == handlers_.end()) {
        DETECTIVE_COUNT("obs.http.not_found");
        response = HttpResponse{404, "text/plain; charset=utf-8",
                                "unknown path: " + request.path + "\n", {}};
      } else {
        response = it->second(request);
      }
    }
    const bool last = connection_close ||
                      served >= options_.max_requests_per_connection;
    if (!SendResponse(fd, request, response, last) || last) return;
  }
}

bool HttpServer::SendResponse(int fd, const HttpRequest& request,
                              const HttpResponse& response,
                              bool close_connection) {
  (void)request;
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     std::string(HttpStatusReason(response.status)) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " + std::to_string(response.body.size()) +
                     "\r\nConnection: " +
                     (close_connection ? "close" : "keep-alive") + "\r\n" +
                     response.extra_headers + "\r\n";
  if (!SendAll(fd, head)) return false;
  return SendAll(fd, response.body);
}

}  // namespace detective::obs
