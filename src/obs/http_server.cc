#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace detective::obs {

namespace {

/// Closes `fd` if valid and resets it to -1.
void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

/// Blocking send() of the whole buffer; false when the peer is gone.
/// MSG_NOSIGNAL: a reset connection must surface as EPIPE, not SIGPIPE —
/// a client disconnect mid-response must never kill the daemon.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Parses the request line "METHOD SP TARGET SP HTTP/x.y"; false on any
/// deviation (the caller answers 400).
bool ParseRequestLine(std::string_view line, HttpRequest* request) {
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return false;
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return false;
  request->method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t question = target.find('?');
  if (question == std::string_view::npos) {
    request->path = std::string(target);
    request->query.clear();
  } else {
    request->path = std::string(target.substr(0, question));
    request->query = std::string(target.substr(question + 1));
  }
  return true;
}

/// What the header block announced about message framing.
struct HeaderScan {
  bool connection_close = false;
  bool has_transfer_encoding = false;
  bool has_content_length = false;
  bool bad_content_length = false;  // present but not a number
  uint64_t content_length = 0;
};

/// Parses the header block into `request->headers` and extracts the framing
/// fields the connection loop needs.
HeaderScan ParseHeaders(std::string_view headers, HttpRequest* request) {
  HeaderScan scan;
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = headers.size();
    std::string_view line = headers.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view name = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    request->headers.emplace_back(std::string(name), std::string(value));
    if (EqualsIgnoreCase(name, "connection") &&
        EqualsIgnoreCase(value, "close")) {
      scan.connection_close = true;
    } else if (EqualsIgnoreCase(name, "content-length")) {
      scan.has_content_length = true;
      if (!ParseUint64(value, &scan.content_length)) {
        scan.bad_content_length = true;
      }
    } else if (EqualsIgnoreCase(name, "transfer-encoding")) {
      scan.has_transfer_encoding = true;
    }
  }
  return scan;
}

HttpResponse PlainResponse(int status, std::string body) {
  return HttpResponse{status, "text/plain; charset=utf-8", std::move(body), {}};
}

}  // namespace

std::string_view HttpRequest::header(std::string_view name) const {
  for (const auto& [header_name, value] : headers) {
    if (EqualsIgnoreCase(header_name, name)) return value;
  }
  return {};
}

std::string_view HttpStatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Content Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

HttpServer::HttpServer(HttpServerOptions options) : options_(options) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string method, std::string path, Handler handler) {
  handlers_[std::move(path)][std::move(method)] = std::move(handler);
}

void HttpServer::Handle(std::string path, Handler handler) {
  Handle("GET", std::move(path), std::move(handler));
}

Status HttpServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("http server already running on port ",
                                 port_.load());
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket(): ", std::strerror(errno));
  }
  // Loopback only: both introspection and serving are local operator
  // surfaces, never exposed off-host. SO_REUSEADDR lets a restarted run
  // rebind the same port while the previous socket lingers in TIME_WAIT.
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IOError("bind(127.0.0.1:", options_.port,
                                    "): ", std::strerror(errno));
    CloseFd(&listen_fd_);
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status status = Status::IOError("listen(): ", std::strerror(errno));
    CloseFd(&listen_fd_);
    return status;
  }
  // Resolve the ephemeral port before the caller can ask for it.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    Status status = Status::IOError("getsockname(): ", std::strerror(errno));
    CloseFd(&listen_fd_);
    return status;
  }
  if (::pipe(wake_pipe_) != 0) {
    Status status = Status::IOError("pipe(): ", std::strerror(errno));
    CloseFd(&listen_fd_);
    return status;
  }
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  stop_requested_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  requests_served_.store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  dispatchers_.reserve(options_.dispatch_threads);
  for (size_t i = 0; i < options_.dispatch_threads; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
  return Status::OK();
}

void HttpServer::BeginDrain() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!running_.load(std::memory_order_acquire)) return;
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  // Wake the accept loop; it closes the listening socket and exits, so new
  // connection attempts are refused by the kernel from here on.
  char byte = 'd';
  [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  queue_cv_.notify_all();
}

bool HttpServer::WaitIdle(uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  return idle_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [this] {
    return pending_fds_.empty() && active_connections_ == 0;
  });
}

void HttpServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  // Wake the poll(); the byte's value is irrelevant.
  char byte = 'q';
  [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  queue_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  for (std::thread& dispatcher : dispatchers_) {
    if (dispatcher.joinable()) dispatcher.join();
  }
  dispatchers_.clear();
  {
    // Connections accepted but never served: close them unanswered.
    std::lock_guard<std::mutex> queue_lock(queue_mutex_);
    for (int fd : pending_fds_) ::close(fd);
    pending_fds_.clear();
  }
  CloseFd(&listen_fd_);
  CloseFd(&wake_pipe_[0]);
  CloseFd(&wake_pipe_[1]);
  running_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
}

bool HttpServer::EnqueueConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (pending_fds_.size() >= options_.connection_backlog) return false;
    pending_fds_.push_back(fd);
  }
  queue_cv_.notify_one();
  return true;
}

void HttpServer::AcceptLoop() {
  while (!stop_requested_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      DETECTIVE_LOG_EVERY_N(64, logs::Level::kWarn, "obs", "accept_poll_failed",
                            "http poll() failed",
                            {"error", std::strerror(errno)});
      break;
    }
    if (stop_requested_.load(std::memory_order_acquire) ||
        draining_.load(std::memory_order_acquire)) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      DETECTIVE_LOG_EVERY_N(64, logs::Level::kWarn, "obs", "accept_failed",
                            "http accept() failed",
                            {"error", std::strerror(errno)});
      continue;
    }
    DETECTIVE_COUNT("obs.http.connections");
    if (options_.dispatch_threads == 0) {
      ServeConnection(conn);
      ::close(conn);
    } else if (!EnqueueConnection(conn)) {
      // The connection queue is the last line of defense behind request
      // admission control; shedding here keeps memory bounded.
      DETECTIVE_COUNT("obs.http.backlog_shed");
      SendResponse(conn, HttpRequest{},
                   PlainResponse(503, "connection backlog full\n"),
                   /*close_connection=*/true);
      ::close(conn);
    }
  }
  // Refuse new connection attempts at the kernel as soon as the loop ends —
  // Stop() joins this thread before touching listen_fd_, so the handoff is
  // race-free.
  CloseFd(&listen_fd_);
}

void HttpServer::DispatchLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !pending_fds_.empty() ||
               stop_requested_.load(std::memory_order_acquire) ||
               draining_.load(std::memory_order_acquire);
      });
      if (pending_fds_.empty()) {
        // Stop or drain with nothing queued: this worker is done.
        return;
      }
      if (stop_requested_.load(std::memory_order_acquire)) return;
      fd = pending_fds_.front();
      pending_fds_.pop_front();
      ++active_connections_;
    }
    ServeConnection(fd);
    ::close(fd);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --active_connections_;
      if (pending_fds_.empty() && active_connections_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

void HttpServer::DispatchRequest(const HttpRequest& request,
                                 HttpResponse* response) {
  auto path_it = handlers_.find(request.path);
  if (path_it == handlers_.end()) {
    DETECTIVE_COUNT("obs.http.not_found");
    *response = PlainResponse(404, "unknown path: " + request.path + "\n");
    return;
  }
  auto method_it = path_it->second.find(request.method);
  if (method_it == path_it->second.end()) {
    DETECTIVE_COUNT("obs.http.bad_methods");
    std::string allow;
    for (const auto& [method, handler] : path_it->second) {
      if (!allow.empty()) allow += ", ";
      allow += method;
    }
    *response = HttpResponse{405, "text/plain; charset=utf-8",
                             "method not allowed for " + request.path + "\n",
                             "Allow: " + allow + "\r\n"};
    return;
  }
  // Panic isolation: one throwing handler answers 500; the daemon survives.
  try {
    *response = method_it->second(request);
  } catch (const std::exception& error) {
    DETECTIVE_COUNT("obs.http.handler_panics");
    logs::Error("obs", "handler_panic", "handler threw; answering 500",
                {{"path", request.path}, {"error", error.what()}});
    *response = PlainResponse(500, "internal error\n");
  } catch (...) {
    DETECTIVE_COUNT("obs.http.handler_panics");
    logs::Error("obs", "handler_panic", "handler threw; answering 500",
                {{"path", request.path}});
    *response = PlainResponse(500, "internal error\n");
  }
}

void HttpServer::ServeConnection(int fd) {
  // Cap how long one read may stall; a trickling or half-sent request is
  // dropped rather than pinning the serving thread.
  timeval timeout{};
  timeout.tv_sec = static_cast<time_t>(options_.read_timeout_ms / 1000);
  timeout.tv_usec =
      static_cast<suseconds_t>((options_.read_timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  size_t served = 0;
  while (served < options_.max_requests_per_connection &&
         !stop_requested_.load(std::memory_order_acquire)) {
    // Read until one full request head is buffered. Pipelined requests can
    // already be waiting in `buffer` from the previous read.
    size_t head_end;
    while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      if (buffer.size() > options_.max_request_bytes) {
        DETECTIVE_COUNT("obs.http.oversized");
        SendResponse(fd, HttpRequest{},
                     PlainResponse(431, "request too large\n"),
                     /*close_connection=*/true);
        return;
      }
      char chunk[2048];
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) return;  // clean client close between requests
      if (n < 0) {
        if (errno == EINTR) continue;
        // Timeout (EAGAIN/EWOULDBLOCK) on a half-sent request, or a reset:
        // drop the connection. A 408 would race the client's own teardown.
        DETECTIVE_COUNT("obs.http.read_timeouts");
        return;
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    // The cap applies to complete heads too, not just ones still streaming
    // in — a single recv() can deliver the whole oversized head at once.
    if (head_end > options_.max_request_bytes) {
      DETECTIVE_COUNT("obs.http.oversized");
      SendResponse(fd, HttpRequest{}, PlainResponse(431, "request too large\n"),
                   /*close_connection=*/true);
      return;
    }

    std::string head = buffer.substr(0, head_end);
    buffer.erase(0, head_end + 4);
    ++served;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    DETECTIVE_COUNT("obs.http.requests");

    size_t line_end = head.find("\r\n");
    std::string_view request_line =
        std::string_view(head).substr(0, line_end);  // npos → whole head
    std::string_view headers =
        line_end == std::string::npos
            ? std::string_view()
            : std::string_view(head).substr(line_end + 2);

    HttpRequest request;
    HttpResponse response;
    if (!ParseRequestLine(request_line, &request)) {
      DETECTIVE_COUNT("obs.http.bad_requests");
      SendResponse(fd, request, PlainResponse(400, "malformed request line\n"),
                   /*close_connection=*/true);
      return;
    }
    HeaderScan scan = ParseHeaders(headers, &request);
    if (scan.has_transfer_encoding) {
      // Chunked (or any other) transfer coding is not supported, and the
      // framing cannot be resynchronized without decoding it: close.
      SendResponse(fd, request,
                   PlainResponse(501, "transfer-encoding not supported\n"),
                   /*close_connection=*/true);
      return;
    }
    if (scan.bad_content_length) {
      DETECTIVE_COUNT("obs.http.bad_requests");
      SendResponse(fd, request, PlainResponse(400, "bad content-length\n"),
                   /*close_connection=*/true);
      return;
    }
    if (scan.has_content_length) {
      if (scan.content_length > options_.max_body_bytes) {
        // The body is not read — it could be arbitrarily large — so the
        // framing is lost and the connection must close.
        DETECTIVE_COUNT("obs.http.body_too_large");
        SendResponse(fd, request, PlainResponse(413, "request body too large\n"),
                     /*close_connection=*/true);
        return;
      }
      // Read the body across as many recv() calls as it takes; part of it
      // may already sit in `buffer` from the head read.
      while (buffer.size() < scan.content_length) {
        char chunk[4096];
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0) return;  // client gave up mid-body
        if (n < 0) {
          if (errno == EINTR) continue;
          DETECTIVE_COUNT("obs.http.read_timeouts");
          return;
        }
        buffer.append(chunk, static_cast<size_t>(n));
      }
      request.body = buffer.substr(0, scan.content_length);
      buffer.erase(0, scan.content_length);
    }

    DispatchRequest(request, &response);
    const bool last = scan.connection_close ||
                      served >= options_.max_requests_per_connection ||
                      draining_.load(std::memory_order_acquire);
    if (!SendResponse(fd, request, response, last) || last) return;
  }
}

bool HttpServer::SendResponse(int fd, const HttpRequest& request,
                              const HttpResponse& response,
                              bool close_connection) {
  (void)request;
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     std::string(HttpStatusReason(response.status)) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " + std::to_string(response.body.size()) +
                     "\r\nConnection: " +
                     (close_connection ? "close" : "keep-alive") + "\r\n" +
                     response.extra_headers + "\r\n";
  if (!SendAll(fd, head)) return false;
  return SendAll(fd, response.body);
}

}  // namespace detective::obs
