#ifndef DETECTIVE_OBS_HTTP_SERVER_H_
#define DETECTIVE_OBS_HTTP_SERVER_H_

// Minimal embedded HTTP/1.1 server for live introspection — a blocking
// accept loop on one background thread over raw POSIX sockets, no
// dependencies (the lyphs srv.c shape, C++-ified). It exists to serve the
// read-only introspection endpoints of obs/introspect.h while a cleaning
// run executes; it is NOT a general web server.
//
// Design constraints, in order:
//   1. The observed process must be unperturbed. Handlers run on the
//      server's own thread and only ever *read* shared state (metric
//      snapshots, progress atomics, trace rings); nothing on the repair hot
//      path blocks on, allocates for, or synchronizes with the server.
//   2. Hostile/broken clients must not wedge the run. Requests are capped at
//      `max_request_bytes` (431 beyond it), reads time out after
//      `read_timeout_ms` (the connection is dropped), and one connection is
//      served at a time — introspection traffic is one curl or one poller,
//      not a fleet.
//   3. Shutdown is deterministic. Stop() wakes the accept loop through a
//      self-pipe, closes the listening socket, joins the thread, and is
//      idempotent; the destructor calls it.
//
// Protocol surface: GET only (anything else → 405 with Allow: GET), paths
// are dispatched exactly (no prefixes; unknown → 404), keep-alive and
// pipelined requests are honored, query strings are parsed off the path and
// passed to the handler. Responses always carry Content-Length and
// Connection headers.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace detective::obs {

struct HttpRequest {
  std::string method;
  std::string path;   // request target without the query string
  std::string query;  // bytes after '?', empty when absent
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra header lines, each "Name: value\r\n" (e.g. "Allow: GET\r\n").
  std::string extra_headers;
};

/// Standard reason phrase for the status codes this server emits.
std::string_view HttpStatusReason(int status);

struct HttpServerOptions {
  /// Port to bind on 127.0.0.1 (introspection is loopback-only by design);
  /// 0 picks an ephemeral port, reported by port() after Start().
  uint16_t port = 0;
  /// Hard cap on the bytes of one request head; longer → 431 + close.
  size_t max_request_bytes = 8192;
  /// A connection idle (or trickling) longer than this mid-request is
  /// dropped — a partial request must not pin the server forever.
  uint64_t read_timeout_ms = 2000;
  /// Keep-alive budget: after this many requests the connection closes.
  size_t max_requests_per_connection = 1024;
};

/// The server. Register handlers, Start(), Stop() (or destroy).
/// Handlers must be registered before Start() and are immutable afterwards —
/// the accept thread reads the table unlocked.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path` (e.g. "/healthz").
  void Handle(std::string path, Handler handler);

  /// Binds 127.0.0.1:port, starts listening, and spawns the accept thread.
  /// A port already in use (or any other bind/listen failure) returns an
  /// IOError and leaves the server stopped.
  Status Start();

  /// Stops accepting, closes the listening socket, and joins the accept
  /// thread. Idempotent; safe to call on a never-started server.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves port 0 requests); 0 before Start().
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Requests served since Start() (any status), for tests and metrics.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Formats and sends one response; returns false when the client is gone.
  bool SendResponse(int fd, const HttpRequest& request,
                    const HttpResponse& response, bool close_connection);

  HttpServerOptions options_;
  std::map<std::string, Handler> handlers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> requests_served_{0};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: Stop() wakes the poll()
  std::thread thread_;
  std::mutex lifecycle_mutex_;  // serializes Start/Stop
};

}  // namespace detective::obs

#endif  // DETECTIVE_OBS_HTTP_SERVER_H_
