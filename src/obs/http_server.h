#ifndef DETECTIVE_OBS_HTTP_SERVER_H_
#define DETECTIVE_OBS_HTTP_SERVER_H_

// Minimal embedded HTTP/1.1 server over raw POSIX sockets, no dependencies
// (the lyphs srv.c shape, C++-ified). It started as the read-only
// introspection listener of obs/introspect.h and now also fronts
// detective_serve, so it supports two operating modes:
//
//   - Inline (dispatch_threads == 0, the default): a blocking accept loop on
//     one background thread serves one connection at a time. This is the
//     introspection configuration — traffic is one curl or one poller, and
//     the observed process must be unperturbed.
//   - Dispatched (dispatch_threads > 0): the accept loop hands connections
//     to a small pool of connection threads through a bounded queue, so
//     several clients can be in flight at once (detective_serve). When the
//     queue is full the connection is answered 503 and closed — the HTTP
//     layer sheds before unbounded memory growth, request-level admission
//     control (429) lives above it.
//
// Robustness constraints, in order:
//   1. Hostile/broken clients must not wedge the process. Request heads are
//      capped at `max_request_bytes` (431 beyond it), bodies at
//      `max_body_bytes` (413), reads time out after `read_timeout_ms` (the
//      connection is dropped), and writes use MSG_NOSIGNAL so a client that
//      disconnects mid-response surfaces as EPIPE, never SIGPIPE.
//   2. A handler that throws answers 500 and the connection thread survives:
//      one bad request must not take down a long-lived daemon.
//   3. Shutdown is deterministic. Stop() wakes the accept loop through a
//      self-pipe, closes the listening socket, joins every thread, and is
//      idempotent; the destructor calls it. BeginDrain() is the graceful
//      variant: stop accepting, finish in-flight requests, then close each
//      connection after its current response (WaitIdle() observes the
//      drain).
//
// Protocol surface: methods are dispatched per registered (method, path)
// pair (unregistered method on a known path → 405 with Allow; unknown path →
// 404), paths match exactly (no prefixes), keep-alive and pipelined requests
// are honored, query strings are parsed off the path. Content-Length bodies
// are read across as many recv() calls as needed and handed to the handler;
// Transfer-Encoding is not supported (501). Responses always carry
// Content-Length and Connection headers.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace detective::obs {

struct HttpRequest {
  std::string method;
  std::string path;   // request target without the query string
  std::string query;  // bytes after '?', empty when absent
  /// Header (name, value) pairs in arrival order; values are trimmed of
  /// leading whitespace. Names keep their wire spelling — use header().
  std::vector<std::pair<std::string, std::string>> headers;
  /// Decoded Content-Length body; empty when the request had none.
  std::string body;

  /// Value of the first header named `name` (ASCII case-insensitive), or an
  /// empty view when absent.
  std::string_view header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra header lines, each "Name: value\r\n" (e.g. "Allow: GET\r\n").
  std::string extra_headers;
};

/// Standard reason phrase for the status codes this server emits.
std::string_view HttpStatusReason(int status);

struct HttpServerOptions {
  /// Port to bind on 127.0.0.1 (both introspection and serving are
  /// loopback-only by design); 0 picks an ephemeral port, reported by
  /// port() after Start().
  uint16_t port = 0;
  /// Hard cap on the bytes of one request head; longer → 431 + close.
  size_t max_request_bytes = 8192;
  /// Hard cap on a request body (Content-Length); larger → 413 + close.
  size_t max_body_bytes = 1 << 20;
  /// A connection idle (or trickling) longer than this mid-request is
  /// dropped — a partial request must not pin the server forever.
  uint64_t read_timeout_ms = 2000;
  /// Keep-alive budget: after this many requests the connection closes.
  size_t max_requests_per_connection = 1024;
  /// Connection threads. 0 = serve inline on the accept thread (the
  /// introspection mode); N > 0 = a pool of N threads fed by the accept
  /// loop through a bounded queue.
  size_t dispatch_threads = 0;
  /// Capacity of the accepted-connection queue in dispatched mode; a
  /// connection arriving with the queue full is answered 503 and closed.
  size_t connection_backlog = 64;
};

/// The server. Register handlers, Start(), Stop() (or destroy).
/// Handlers must be registered before Start() and are immutable afterwards —
/// the serving threads read the table unlocked. In dispatched mode handlers
/// run concurrently and must be thread-safe.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path` (e.g. "/healthz") under
  /// `method` (e.g. "POST"). Registering the same (method, path) twice
  /// replaces the handler.
  void Handle(std::string method, std::string path, Handler handler);

  /// GET-only convenience, the introspection surface.
  void Handle(std::string path, Handler handler);

  /// Binds 127.0.0.1:port, starts listening, and spawns the accept thread
  /// (plus dispatch_threads connection threads). A port already in use (or
  /// any other bind/listen failure) returns an IOError and leaves the
  /// server stopped.
  Status Start();

  /// Graceful shutdown, phase 1: close the listening socket (new connection
  /// attempts are refused) and mark every live connection to close after
  /// the response currently being computed. Idempotent; no-op when not
  /// running. Follow with WaitIdle() + Stop().
  void BeginDrain();

  /// Blocks until no connection is queued or being served, or `timeout_ms`
  /// elapsed; true on idle. Meaningful after BeginDrain().
  bool WaitIdle(uint64_t timeout_ms);

  /// Stops accepting, closes the listening socket, and joins all threads.
  /// In-flight requests finish first (handlers are never interrupted).
  /// Idempotent; safe to call on a never-started server.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// The bound port (resolves port 0 requests); 0 before Start().
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Requests served since Start() (any status), for tests and metrics.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void DispatchLoop();
  void ServeConnection(int fd);
  void DispatchRequest(const HttpRequest& request, HttpResponse* response);
  /// Hands `fd` to the connection pool; false when the queue is full.
  bool EnqueueConnection(int fd);
  /// Formats and sends one response; returns false when the client is gone.
  bool SendResponse(int fd, const HttpRequest& request,
                    const HttpResponse& response, bool close_connection);

  HttpServerOptions options_;
  std::map<std::string, std::map<std::string, Handler>> handlers_;  // path → method
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> requests_served_{0};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: Stop()/BeginDrain() wake the poll()
  std::thread thread_;
  std::vector<std::thread> dispatchers_;
  std::mutex lifecycle_mutex_;  // serializes Start/Stop/BeginDrain

  // Accepted-connection queue (dispatched mode).
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;   // signals work or shutdown
  std::condition_variable idle_cv_;    // signals the queue went idle
  std::deque<int> pending_fds_;
  size_t active_connections_ = 0;
};

}  // namespace detective::obs

#endif  // DETECTIVE_OBS_HTTP_SERVER_H_
