#include "obs/openmetrics.h"

#include <cstdio>

namespace detective::obs {

namespace {

/// Shortest-round-trip decimal for a seconds value; OpenMetrics floats must
/// not use locale-dependent formatting, and %g never emits a comma.
std::string FormatSeconds(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", seconds);
  return std::string(buf);
}

void AppendCounter(std::string* out, const std::string& name, uint64_t value) {
  std::string family = OpenMetricsName(name);
  out->append("# HELP ").append(family).append(
      " Monotonic event counter (registry name: ");
  out->append(name).append(")\n");
  out->append("# TYPE ").append(family).append(" counter\n");
  out->append(family).append("_total ").append(std::to_string(value));
  out->push_back('\n');
}

void AppendTimer(std::string* out, const std::string& name,
                 const metrics::MetricsSnapshot::Timer& timer) {
  std::string family = OpenMetricsName(name) + "_seconds";
  out->append("# HELP ").append(family).append(
      " Wall-clock scope duration histogram (registry name: ");
  out->append(name).append(")\n");
  out->append("# TYPE ").append(family).append(" histogram\n");
  out->append("# UNIT ").append(family).append(" seconds\n");

  // Buckets are cumulative per OpenMetrics; the registry's are per-bucket
  // log2 counts in nanoseconds, so re-base while converting the upper
  // bounds to seconds. The final registry bucket is the overflow bucket —
  // it has no meaningful finite bound and folds into le="+Inf".
  uint64_t cumulative = 0;
  for (size_t b = 0; b + 1 < metrics::kNumHistogramBuckets; ++b) {
    cumulative += timer.buckets[b];
    double le = static_cast<double>(metrics::HistogramBucketUpperNs(b)) / 1e9;
    out->append(family).append("_bucket{le=\"").append(FormatSeconds(le));
    out->append("\"} ").append(std::to_string(cumulative));
    out->push_back('\n');
  }
  out->append(family).append("_bucket{le=\"+Inf\"} ");
  out->append(std::to_string(timer.count));
  out->push_back('\n');
  out->append(family).append("_sum ");
  out->append(FormatSeconds(static_cast<double>(timer.total_ns) / 1e9));
  out->push_back('\n');
  out->append(family).append("_count ").append(std::to_string(timer.count));
  out->push_back('\n');
}

}  // namespace

std::string OpenMetricsName(std::string_view name) {
  std::string out = "detective_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string RenderOpenMetrics(const metrics::MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(1024 + snapshot.counters.size() * 96 +
              snapshot.timers.size() * 64 * metrics::kNumHistogramBuckets);
  for (const auto& [name, value] : snapshot.counters) {
    AppendCounter(&out, name, value);
  }
  for (const auto& [name, timer] : snapshot.timers) {
    AppendTimer(&out, name, timer);
  }
  out.append("# EOF\n");
  return out;
}

}  // namespace detective::obs
