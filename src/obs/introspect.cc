#include "obs/introspect.h"

#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "obs/openmetrics.h"
#include "obs/progress.h"

namespace detective::obs {

bool ShouldDisableUnderFaultPlan() {
#if DETECTIVE_FAULT_ENABLED
  if (!fault::Injector::Global().armed()) return false;
  fault::FaultPlan plan = fault::Injector::Global().plan();
  for (const fault::FaultClause& clause : plan.clauses) {
    if (fault::GlobMatch(clause.site_glob, kObsFaultSite)) return true;
  }
#endif
  return false;
}

void RegisterIntrospectionHandlers(HttpServer* server) {
  server->Handle("/healthz", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n", {}};
  });
  server->Handle("/metrics", [](const HttpRequest&) {
    // Non-destructive snapshot: a scrape must never steal the deltas the
    // end-of-run --metrics-json report (or a second scraper) will read.
    return HttpResponse{
        200, kOpenMetricsContentType,
        RenderOpenMetrics(metrics::Registry::Global().Snapshot()), {}};
  });
  server->Handle("/metrics.json", [](const HttpRequest&) {
    return HttpResponse{200, "application/json",
                        metrics::Registry::Global().Snapshot().ToJson(), {}};
  });
  server->Handle("/progress", [](const HttpRequest&) {
    return HttpResponse{200, "application/json",
                        ProgressTracker::Global().ToJson(), {}};
  });
  server->Handle("/trace", [](const HttpRequest&) {
    // Collect() merges the rings without stopping the recorder; a mid-run
    // poll sees the timeline so far.
    return HttpResponse{
        200, "application/json",
        trace::ToChromeTraceJson(trace::Registry::Global().Collect()), {}};
  });
}

IntrospectServer::IntrospectServer(IntrospectOptions options)
    : server_(HttpServerOptions{.port = options.port}) {
  RegisterIntrospectionHandlers(&server_);
}

IntrospectServer::~IntrospectServer() { Stop(); }

Status IntrospectServer::Start() { return server_.Start(); }

void IntrospectServer::Stop() { server_.Stop(); }

}  // namespace detective::obs
