#ifndef DETECTIVE_OBS_PROGRESS_H_
#define DETECTIVE_OBS_PROGRESS_H_

// Live run progress — the answer to "is it stuck?" for a long cleaning run,
// served by GET /progress while repair executes.
//
// The tracker is a bundle of relaxed atomics. Workers (FastRepairer rows,
// ParallelRepair's committer, the quarantine path) update individual fields
// with single relaxed stores/adds — no locks, no allocation, nothing a
// repair hot loop can contend on. The introspection thread samples the
// fields lock-free at serve time; a sample is therefore only *per-field*
// consistent (rows_committed may be one ahead of rounds), which is exactly
// the fidelity a heartbeat needs.
//
// Progress updates are observability, not semantics: they never feed back
// into repair decisions, so repaired output is byte-identical whether a
// tracker is being sampled or not.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace detective::obs {

/// Coarse pipeline position, in execution order.
enum class Phase : int {
  kIdle = 0,
  kLoad = 1,
  kIndex = 2,
  kRepair = 3,
  kWrite = 4,
  kDone = 5,
};

/// Stable wire name ("idle" | "load" | "index" | "repair" | "write" | "done").
std::string_view PhaseName(Phase phase);

/// One lock-free sample of the tracker (plain values, safe to copy).
struct ProgressSample {
  Phase phase = Phase::kIdle;
  uint64_t rows_total = 0;
  uint64_t rows_committed = 0;
  uint64_t rounds = 0;           // highest chase round observed on any tuple
  uint64_t stratum = 0;          // current stratum (0-based) when stratified
  uint64_t strata_total = 0;     // 0 when the run is not stratified
  uint64_t steals = 0;           // ParallelRepair work-stealing events
  uint64_t quarantined = 0;      // tuples diverted to the quarantine log
  uint64_t elapsed_ms = 0;       // since BeginRun()
  uint64_t deadline_ms = 0;      // configured budget; 0 = none
  uint64_t runs_completed = 0;   // EndRun() count (a process can clean twice)
};

/// The process-wide tracker. All methods are thread-safe; the mutating ones
/// are single relaxed atomic operations.
class ProgressTracker {
 public:
  static ProgressTracker& Global();

  /// Resets every field and anchors the elapsed clock. `deadline_ms` is the
  /// run's wall-clock budget (0 = unbounded), echoed into samples so a
  /// dashboard can show elapsed-vs-deadline.
  void BeginRun(uint64_t rows_total, uint64_t deadline_ms);

  /// Marks the run finished (phase → done) and freezes elapsed_ms.
  void EndRun();

  void SetPhase(Phase phase);
  void SetRowsTotal(uint64_t rows_total);
  void SetStrataTotal(uint64_t strata_total);
  void SetStratum(uint64_t stratum);

  void AddRowsCommitted(uint64_t n) {
    rows_committed_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Rounds are reported as a high-water mark across tuples/workers.
  void NoteRounds(uint64_t rounds);
  void AddSteals(uint64_t n) {
    steals_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddQuarantined(uint64_t n) {
    quarantined_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Lock-free point-in-time sample (per-field consistency only).
  ProgressSample Sample() const;

  /// The /progress JSON document:
  ///   {"phase":"repair","rows_total":2000,"rows_committed":640,
  ///    "rounds":3,"stratum":1,"strata_total":2,"steals":4,
  ///    "quarantined":0,"elapsed_ms":152,"deadline_ms":0,
  ///    "runs_completed":0,"done":false}
  std::string ToJson() const;

 private:
  ProgressTracker() = default;

  std::atomic<int> phase_{static_cast<int>(Phase::kIdle)};
  std::atomic<uint64_t> rows_total_{0};
  std::atomic<uint64_t> rows_committed_{0};
  std::atomic<uint64_t> rounds_{0};
  std::atomic<uint64_t> stratum_{0};
  std::atomic<uint64_t> strata_total_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> quarantined_{0};
  std::atomic<uint64_t> deadline_ms_{0};
  std::atomic<int64_t> start_ns_{0};      // steady-clock anchor of BeginRun()
  std::atomic<uint64_t> frozen_elapsed_ms_{0};  // valid once done
  std::atomic<uint64_t> runs_completed_{0};
};

}  // namespace detective::obs

#ifndef DETECTIVE_METRICS_ENABLED
#define DETECTIVE_METRICS_ENABLED 1
#endif

/// Progress update at an instrumentation site, e.g.
/// DETECTIVE_PROGRESS(AddRowsCommitted(1)). Compiles out with the rest of
/// the observability macros under DETECTIVE_METRICS=OFF; the tracker class
/// itself stays available either way so tools and tests always link.
#if DETECTIVE_METRICS_ENABLED
#define DETECTIVE_PROGRESS(call) \
  (::detective::obs::ProgressTracker::Global().call)
#else
// Dead-branch form so variables referenced only at instrumentation sites
// (e.g. a loop's stratum ordinal) don't become unused under -Werror.
#define DETECTIVE_PROGRESS(call)                                     \
  do {                                                               \
    if (false) (::detective::obs::ProgressTracker::Global().call);   \
  } while (0)
#endif

#endif  // DETECTIVE_OBS_PROGRESS_H_
