#ifndef DETECTIVE_OBS_OPENMETRICS_H_
#define DETECTIVE_OBS_OPENMETRICS_H_

// OpenMetrics text exposition of a MetricsSnapshot — what `GET /metrics`
// serves and what Prometheus-compatible scrapers ingest.
//
// Mapping (validated by tools/check_openmetrics.py):
//   * every registry counter `a.b.c` becomes the counter family
//     `detective_a_b_c` (dots → underscores), exposed as the single sample
//     `detective_a_b_c_total`;
//   * every registry timer becomes the histogram family
//     `detective_<name>_seconds`: the 48 log2 nanosecond buckets are
//     re-based to cumulative per-second `_bucket{le="..."}` samples (the
//     overflow bucket folds into le="+Inf"), `_sum` is total_ns in seconds,
//     `_count` the number of timed scopes;
//   * families are emitted in sorted-name order, each preceded by its
//     `# HELP`/`# TYPE` (and `# UNIT` for histograms) lines, and the
//     document ends with the mandatory `# EOF` terminator.

#include <string>

#include "common/metrics.h"

namespace detective::obs {

/// Content-Type for the exposition format.
inline constexpr char kOpenMetricsContentType[] =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Renders `snapshot` as an OpenMetrics text document.
std::string RenderOpenMetrics(const metrics::MetricsSnapshot& snapshot);

/// "detective_" + name with every '.' (and any other non [a-zA-Z0-9_:]
/// byte) replaced by '_' — the exposition-safe family name.
std::string OpenMetricsName(std::string_view name);

}  // namespace detective::obs

#endif  // DETECTIVE_OBS_OPENMETRICS_H_
