#ifndef DETECTIVE_OBS_INTROSPECT_H_
#define DETECTIVE_OBS_INTROSPECT_H_

// The live introspection surface: binds the read-only observability
// endpoints onto an embedded HttpServer. This is what
// `detective_clean --introspect=PORT` starts, and the first slice of the
// ROADMAP's `detective_serve`.
//
// Endpoints (all GET, all loopback-only):
//   /healthz       "ok\n" — liveness probe
//   /metrics       OpenMetrics text exposition (obs/openmetrics.h) of a
//                  non-destructive Registry::Snapshot()
//   /metrics.json  the same snapshot as the --metrics-json JSON schema
//   /progress      ProgressTracker::Global().ToJson() heartbeat
//   /trace         the trace ring so far as Chrome trace-event JSON
//
// Every handler only *reads* shared state (registry snapshot under the
// registry mutex on the server thread, progress atomics, trace rings), so
// repaired output is byte-identical with the server on or off.
//
// Fault-plan interaction: chaos runs must be able to keep their blast
// radius away from the observer. When the armed fault plan has a clause
// whose site glob matches "obs.serve" (so `obs.*`, `obs.serve`, or a bare
// `*`), ShouldDisableUnderFaultPlan() reports true and the CLI skips
// starting the server instead of serving fault-distorted answers. Plans
// that target only pipeline sites (kb.*, repair.*, ...) leave introspection
// fully live — observing a chaos run is the point.

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "obs/http_server.h"

namespace detective::obs {

/// The fault-probe site name the self-disable check matches plans against.
inline constexpr char kObsFaultSite[] = "obs.serve";

/// True when an armed fault plan targets the introspection subsystem
/// (any clause glob matching kObsFaultSite). False when disarmed or when
/// the fault framework is compiled out.
bool ShouldDisableUnderFaultPlan();

struct IntrospectOptions {
  /// Port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
};

/// Registers the read-only introspection handlers (/healthz, /metrics,
/// /metrics.json, /progress, /trace) on `server`. IntrospectServer calls
/// this on its own listener; detective_serve calls it to expose the same
/// surface on the serving listener. Must run before server->Start().
void RegisterIntrospectionHandlers(HttpServer* server);

/// Owns an HttpServer with the introspection handlers registered.
class IntrospectServer {
 public:
  explicit IntrospectServer(IntrospectOptions options = {});
  ~IntrospectServer();

  /// Starts serving. IOError on bind failure (e.g. port in use).
  Status Start();

  /// Stops and joins the server thread; idempotent.
  void Stop();

  bool running() const { return server_.running(); }
  uint16_t port() const { return server_.port(); }
  uint64_t requests_served() const { return server_.requests_served(); }

 private:
  HttpServer server_;
};

}  // namespace detective::obs

#endif  // DETECTIVE_OBS_INTROSPECT_H_
