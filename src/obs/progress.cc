#include "obs/progress.h"

#include <chrono>

namespace detective::obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kIdle:
      return "idle";
    case Phase::kLoad:
      return "load";
    case Phase::kIndex:
      return "index";
    case Phase::kRepair:
      return "repair";
    case Phase::kWrite:
      return "write";
    case Phase::kDone:
      return "done";
  }
  return "?";
}

ProgressTracker& ProgressTracker::Global() {
  static ProgressTracker* tracker = new ProgressTracker();
  return *tracker;
}

void ProgressTracker::BeginRun(uint64_t rows_total, uint64_t deadline_ms) {
  phase_.store(static_cast<int>(Phase::kLoad), std::memory_order_relaxed);
  rows_total_.store(rows_total, std::memory_order_relaxed);
  rows_committed_.store(0, std::memory_order_relaxed);
  rounds_.store(0, std::memory_order_relaxed);
  stratum_.store(0, std::memory_order_relaxed);
  strata_total_.store(0, std::memory_order_relaxed);
  steals_.store(0, std::memory_order_relaxed);
  quarantined_.store(0, std::memory_order_relaxed);
  deadline_ms_.store(deadline_ms, std::memory_order_relaxed);
  frozen_elapsed_ms_.store(0, std::memory_order_relaxed);
  start_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
}

void ProgressTracker::EndRun() {
  int64_t start = start_ns_.load(std::memory_order_relaxed);
  uint64_t elapsed_ms =
      start == 0 ? 0
                 : static_cast<uint64_t>(SteadyNowNs() - start) / 1000000u;
  frozen_elapsed_ms_.store(elapsed_ms, std::memory_order_relaxed);
  phase_.store(static_cast<int>(Phase::kDone), std::memory_order_relaxed);
  runs_completed_.fetch_add(1, std::memory_order_relaxed);
}

void ProgressTracker::SetPhase(Phase phase) {
  phase_.store(static_cast<int>(phase), std::memory_order_relaxed);
}

void ProgressTracker::SetRowsTotal(uint64_t rows_total) {
  rows_total_.store(rows_total, std::memory_order_relaxed);
}

void ProgressTracker::SetStrataTotal(uint64_t strata_total) {
  strata_total_.store(strata_total, std::memory_order_relaxed);
}

void ProgressTracker::SetStratum(uint64_t stratum) {
  stratum_.store(stratum, std::memory_order_relaxed);
}

void ProgressTracker::NoteRounds(uint64_t rounds) {
  // fetch_max is C++26; emulate with a CAS loop (contention is negligible —
  // the value changes a handful of times per run).
  uint64_t current = rounds_.load(std::memory_order_relaxed);
  while (rounds > current &&
         !rounds_.compare_exchange_weak(current, rounds,
                                        std::memory_order_relaxed)) {
  }
}

ProgressSample ProgressTracker::Sample() const {
  ProgressSample sample;
  sample.phase =
      static_cast<Phase>(phase_.load(std::memory_order_relaxed));
  sample.rows_total = rows_total_.load(std::memory_order_relaxed);
  sample.rows_committed = rows_committed_.load(std::memory_order_relaxed);
  sample.rounds = rounds_.load(std::memory_order_relaxed);
  sample.stratum = stratum_.load(std::memory_order_relaxed);
  sample.strata_total = strata_total_.load(std::memory_order_relaxed);
  sample.steals = steals_.load(std::memory_order_relaxed);
  sample.quarantined = quarantined_.load(std::memory_order_relaxed);
  sample.deadline_ms = deadline_ms_.load(std::memory_order_relaxed);
  sample.runs_completed = runs_completed_.load(std::memory_order_relaxed);
  if (sample.phase == Phase::kDone) {
    sample.elapsed_ms = frozen_elapsed_ms_.load(std::memory_order_relaxed);
  } else {
    int64_t start = start_ns_.load(std::memory_order_relaxed);
    sample.elapsed_ms =
        start == 0 ? 0
                   : static_cast<uint64_t>(SteadyNowNs() - start) / 1000000u;
  }
  return sample;
}

std::string ProgressTracker::ToJson() const {
  ProgressSample s = Sample();
  std::string out;
  out.reserve(256);
  out.append("{\"phase\":\"").append(PhaseName(s.phase)).append("\"");
  out.append(",\"rows_total\":").append(std::to_string(s.rows_total));
  out.append(",\"rows_committed\":").append(std::to_string(s.rows_committed));
  out.append(",\"rounds\":").append(std::to_string(s.rounds));
  out.append(",\"stratum\":").append(std::to_string(s.stratum));
  out.append(",\"strata_total\":").append(std::to_string(s.strata_total));
  out.append(",\"steals\":").append(std::to_string(s.steals));
  out.append(",\"quarantined\":").append(std::to_string(s.quarantined));
  out.append(",\"elapsed_ms\":").append(std::to_string(s.elapsed_ms));
  out.append(",\"deadline_ms\":").append(std::to_string(s.deadline_ms));
  out.append(",\"runs_completed\":").append(std::to_string(s.runs_completed));
  out.append(",\"done\":").append(s.phase == Phase::kDone ? "true" : "false");
  out.append("}");
  return out;
}

}  // namespace detective::obs
