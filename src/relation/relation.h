#ifndef DETECTIVE_RELATION_RELATION_H_
#define DETECTIVE_RELATION_RELATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace detective {

/// Index of a column within a Schema.
using ColumnIndex = uint32_t;
inline constexpr ColumnIndex kInvalidColumn = static_cast<ColumnIndex>(-1);

/// An ordered list of named columns (relation schema R).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> columns);

  size_t num_columns() const { return columns_.size(); }
  const std::string& column_name(ColumnIndex index) const { return columns_[index]; }
  const std::vector<std::string>& columns() const { return columns_; }

  /// Index of `name`, or kInvalidColumn.
  ColumnIndex FindColumn(std::string_view name) const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<std::string> columns_;
};

/// Correctness marking of one cell. The paper marks cells "positive" (+)
/// when a rule proves them correct — either directly or after a repair; all
/// other cells are of unknown correctness.
enum class CellMark : uint8_t {
  kUnknown = 0,
  kPositive = 1,
};

/// One row: string cells plus per-cell marks and repair provenance.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<std::string> values);

  size_t size() const { return values_.size(); }
  const std::string& value(ColumnIndex column) const { return values_[column]; }
  const std::vector<std::string>& values() const { return values_; }

  CellMark mark(ColumnIndex column) const { return marks_[column]; }
  bool IsPositive(ColumnIndex column) const {
    return marks_[column] == CellMark::kPositive;
  }
  size_t CountPositive() const;

  /// Marks a cell positive (monotone: never un-marked).
  void MarkPositive(ColumnIndex column) { marks_[column] = CellMark::kPositive; }

  /// Overwrites a cell value as a repair and records provenance. The caller
  /// is responsible for the paper's invariant that positively-marked cells
  /// are never repaired (repairers enforce it with a check).
  void Repair(ColumnIndex column, std::string new_value);

  /// Plain write without provenance, for loading and generators.
  void SetValue(ColumnIndex column, std::string new_value) {
    values_[column] = std::move(new_value);
  }

  bool WasRepaired(ColumnIndex column) const { return repaired_[column]; }
  /// The value the cell held before its first repair (meaningful only when
  /// WasRepaired(column)).
  const std::string& OriginalValue(ColumnIndex column) const {
    return originals_[column];
  }
  size_t CountRepaired() const;

  /// "v1, v2+, v3" rendering used in examples and test failures (the paper's
  /// + notation for marked tuples).
  std::string ToString() const;

  /// Equality over values only (marks/provenance ignored) — what fixpoint
  /// comparison needs.
  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }

 private:
  std::vector<std::string> values_;
  std::vector<CellMark> marks_;
  std::vector<uint8_t> repaired_;      // bool per cell
  std::vector<std::string> originals_; // pre-repair values
};

/// A table instance D of schema R.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_tuples() const { return tuples_.size(); }

  const Tuple& tuple(size_t row) const { return tuples_[row]; }
  Tuple& mutable_tuple(size_t row) { return tuples_[row]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Appends a row; must have schema().num_columns() values.
  Status Append(std::vector<std::string> values);
  void Append(Tuple tuple);

  /// Total number of cells (rows × columns).
  size_t num_cells() const { return tuples_.size() * schema_.num_columns(); }

  /// Cells marked positive across all tuples — the paper's #-POS metric.
  size_t CountPositiveCells() const;

  /// CSV round-trip: first record is the header.
  static Result<Relation> FromCsvFile(const std::string& path);
  static Result<Relation> FromCsv(std::string_view text);
  Status ToCsvFile(const std::string& path) const;
  std::string ToCsv() const;

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace detective

#endif  // DETECTIVE_RELATION_RELATION_H_
