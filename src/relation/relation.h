#ifndef DETECTIVE_RELATION_RELATION_H_
#define DETECTIVE_RELATION_RELATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace detective {

/// Index of a column within a Schema.
using ColumnIndex = uint32_t;
inline constexpr ColumnIndex kInvalidColumn = static_cast<ColumnIndex>(-1);

/// An ordered list of named columns (relation schema R).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> columns);

  size_t num_columns() const { return columns_.size(); }
  const std::string& column_name(ColumnIndex index) const { return columns_[index]; }
  const std::vector<std::string>& columns() const { return columns_; }

  /// Index of `name`, or kInvalidColumn.
  ColumnIndex FindColumn(std::string_view name) const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<std::string> columns_;
};

/// Correctness marking of one cell. The paper marks cells "positive" (+)
/// when a rule proves them correct — either directly or after a repair; all
/// other cells are of unknown correctness.
enum class CellMark : uint8_t {
  kUnknown = 0,
  kPositive = 1,
};

/// One detached row: string cells plus per-cell marks and repair provenance.
///
/// Since the Relation below went columnar, Tuple is the *working copy* the
/// chase mutates: repair drivers check a row out (Relation::tuple), chase
/// the Tuple to its fixpoint, and commit it back (Relation::CommitRow).
/// Everything the chase needs is row-local, so a checked-out Tuple is
/// independent of the relation it came from.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<std::string> values);

  size_t size() const { return values_.size(); }
  const std::string& value(ColumnIndex column) const { return values_[column]; }
  const std::vector<std::string>& values() const { return values_; }

  CellMark mark(ColumnIndex column) const { return marks_[column]; }
  bool IsPositive(ColumnIndex column) const {
    return marks_[column] == CellMark::kPositive;
  }
  size_t CountPositive() const;

  /// Marks a cell positive (monotone: never un-marked).
  void MarkPositive(ColumnIndex column) { marks_[column] = CellMark::kPositive; }

  /// Overwrites a cell value as a repair and records provenance. The caller
  /// is responsible for the paper's invariant that positively-marked cells
  /// are never repaired (repairers enforce it with a check).
  void Repair(ColumnIndex column, std::string new_value);

  /// Plain write without provenance, for loading and generators.
  void SetValue(ColumnIndex column, std::string new_value) {
    values_[column] = std::move(new_value);
  }

  bool WasRepaired(ColumnIndex column) const { return repaired_[column]; }
  /// The value the cell held before its first repair (meaningful only when
  /// WasRepaired(column)).
  const std::string& OriginalValue(ColumnIndex column) const {
    return originals_[column];
  }
  size_t CountRepaired() const;

  /// "v1, v2+, v3" rendering used in examples and test failures (the paper's
  /// + notation for marked tuples).
  std::string ToString() const;

  /// Equality over values only (marks/provenance ignored) — what fixpoint
  /// comparison needs.
  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }

 private:
  friend class Relation;  // materialization from columnar storage

  std::vector<std::string> values_;
  std::vector<CellMark> marks_;
  std::vector<uint8_t> repaired_;      // bool per cell
  std::vector<std::string> originals_; // pre-repair values
};

/// One column of a Relation: the cell bytes live contiguously (in row order)
/// in a per-column arena, and `cells_` is the offsets array — one
/// (pointer, length) view per row into those stable bytes. Scanning a column
/// therefore streams cache-line-sequential data instead of chasing one
/// std::string heap allocation per cell. Marks, repair flags, and pre-repair
/// originals are parallel per-row arrays of the same column.
///
/// Read-only from outside; all mutation goes through Relation so row counts
/// stay in lock-step across columns.
class Column {
 public:
  size_t size() const { return cells_.size(); }
  std::string_view value(size_t row) const { return cells_[row]; }
  CellMark mark(size_t row) const { return marks_[row]; }
  bool IsPositive(size_t row) const { return marks_[row] == CellMark::kPositive; }
  bool WasRepaired(size_t row) const { return repaired_[row] != 0; }
  /// Meaningful only when WasRepaired(row).
  std::string_view original(size_t row) const { return originals_[row]; }
  /// Total interned cell bytes (repairs append; old spans are kept for
  /// originals, so this is an upper bound on live bytes).
  size_t bytes_used() const { return arena_.bytes_used(); }

 private:
  friend class Relation;

  std::vector<std::string_view> cells_;     // offsets array into arena_
  std::vector<CellMark> marks_;
  std::vector<uint8_t> repaired_;           // bool per row
  std::vector<std::string_view> originals_; // valid where repaired_
  StringArena arena_;                       // contiguous value bytes
};

/// A table instance D of schema R, stored columnar: one arena-backed Column
/// per schema column. Rows are identified by position and by a stable
/// `row_id` assigned at append time. Cell reads return `std::string_view`s
/// that stay valid for the relation's lifetime (arena blocks never move);
/// cell writes re-intern into the column arena.
///
/// The chase works on detached row copies: `tuple(row)` materializes a Tuple
/// (values + marks + repair provenance), `CommitRow` writes one back. Commits
/// are the only mutating path repair drivers use, so parallel workers can
/// read shared columns freely and serialize their commits after the join.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema)
      : schema_(std::move(schema)), columns_(schema_.num_columns()) {}

  /// Deep copy: cell bytes are re-interned compactly (dropped repair slack
  /// is not copied); marks, provenance, and row ids carry over.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const Schema& schema() const { return schema_; }
  size_t num_tuples() const { return row_ids_.size(); }

  /// Stable identifier of `row`, assigned at append in arrival order and
  /// never reused; independent of any later reordering or filtering.
  uint64_t row_id(size_t row) const { return row_ids_[row]; }

  /// Column-major access for streaming scans.
  const Column& column(ColumnIndex index) const { return columns_[index]; }

  // --- cell accessors (the hot path) ---
  std::string_view value(size_t row, ColumnIndex c) const {
    return columns_[c].cells_[row];
  }
  CellMark mark(size_t row, ColumnIndex c) const { return columns_[c].marks_[row]; }
  bool IsPositive(size_t row, ColumnIndex c) const {
    return columns_[c].marks_[row] == CellMark::kPositive;
  }
  bool WasRepaired(size_t row, ColumnIndex c) const {
    return columns_[c].repaired_[row] != 0;
  }
  /// Meaningful only when WasRepaired(row, c).
  std::string_view OriginalValue(size_t row, ColumnIndex c) const {
    return columns_[c].originals_[row];
  }

  // --- cell mutators ---
  /// Plain write without provenance (loading, generators, error injection).
  void SetValue(size_t row, ColumnIndex c, std::string_view v);
  /// Marks a cell positive (monotone).
  void MarkPositive(size_t row, ColumnIndex c) {
    columns_[c].marks_[row] = CellMark::kPositive;
  }
  /// Overwrites a cell as a repair, recording the pre-repair original on the
  /// first repair — the columnar mirror of Tuple::Repair.
  void RepairCell(size_t row, ColumnIndex c, std::string_view v);

  // --- row materialization bridge ---
  /// Materializes a detached working copy of `row` (values, marks, repair
  /// provenance). Note this returns by value: the columnar store has no
  /// per-row object to reference.
  Tuple tuple(size_t row) const;
  /// Writes a chased working copy back: changed values are re-interned,
  /// positive marks merge monotonically, and repair provenance recorded on
  /// the Tuple (first-repair originals) transfers to the column arrays.
  void CommitRow(size_t row, const Tuple& tuple);

  /// Appends a row; must have schema().num_columns() values.
  Status Append(std::vector<std::string> values);
  void Append(const Tuple& tuple);

  /// Total number of cells (rows × columns).
  size_t num_cells() const { return num_tuples() * schema_.num_columns(); }

  /// Cells marked positive across all tuples — the paper's #-POS metric.
  size_t CountPositiveCells() const;
  /// Cells carrying a repair record across all tuples.
  size_t CountRepairedCells() const;

  /// CSV round-trip: first record is the header.
  static Result<Relation> FromCsvFile(const std::string& path);
  static Result<Relation> FromCsv(std::string_view text);
  Status ToCsvFile(const std::string& path) const;
  std::string ToCsv() const;

 private:
  /// Appends one materialized row across all columns.
  void AppendRow(const std::vector<std::string>& values);
  /// Header row + one materialized row per tuple, for CSV serialization.
  std::vector<std::vector<std::string>> CsvRows() const;

  Schema schema_;
  std::vector<Column> columns_;   // parallel to schema_
  std::vector<uint64_t> row_ids_; // stable append-order ids
  uint64_t next_row_id_ = 0;
};

}  // namespace detective

#endif  // DETECTIVE_RELATION_RELATION_H_
