#include "relation/relation.h"

#include <sstream>

#include "common/csv.h"
#include "common/logging.h"

namespace detective {

Schema::Schema(std::vector<std::string> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      DETECTIVE_CHECK(columns_[i] != columns_[j])
          << "duplicate column name '" << columns_[i] << "'";
    }
  }
}

ColumnIndex Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<ColumnIndex>(i);
  }
  return kInvalidColumn;
}

Tuple::Tuple(std::vector<std::string> values)
    : values_(std::move(values)),
      marks_(values_.size(), CellMark::kUnknown),
      repaired_(values_.size(), 0),
      originals_(values_.size()) {}

size_t Tuple::CountPositive() const {
  size_t count = 0;
  for (CellMark mark : marks_) count += mark == CellMark::kPositive ? 1 : 0;
  return count;
}

void Tuple::Repair(ColumnIndex column, std::string new_value) {
  if (!repaired_[column]) {
    originals_[column] = values_[column];
    repaired_[column] = 1;
  }
  values_[column] = std::move(new_value);
}

size_t Tuple::CountRepaired() const {
  size_t count = 0;
  for (uint8_t flag : repaired_) count += flag;
  return count;
}

std::string Tuple::ToString() const {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out << ", ";
    out << values_[i];
    if (marks_[i] == CellMark::kPositive) out << "+";
  }
  out << ")";
  return out.str();
}

Relation::Relation(const Relation& other)
    : schema_(other.schema_),
      columns_(other.columns_.size()),
      row_ids_(other.row_ids_),
      next_row_id_(other.next_row_id_) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& src = other.columns_[c];
    Column& dst = columns_[c];
    dst.marks_ = src.marks_;
    dst.repaired_ = src.repaired_;
    dst.cells_.reserve(src.cells_.size());
    dst.originals_.resize(src.originals_.size());
    for (size_t row = 0; row < src.cells_.size(); ++row) {
      dst.cells_.push_back(dst.arena_.Intern(src.cells_[row]));
      if (src.repaired_[row]) {
        dst.originals_[row] = dst.arena_.Intern(src.originals_[row]);
      }
    }
  }
}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) *this = Relation(other);  // copy-construct, move-assign
  return *this;
}

void Relation::SetValue(size_t row, ColumnIndex c, std::string_view v) {
  Column& column = columns_[c];
  if (column.cells_[row] == v) return;
  column.cells_[row] = column.arena_.Intern(v);
}

void Relation::RepairCell(size_t row, ColumnIndex c, std::string_view v) {
  Column& column = columns_[c];
  if (!column.repaired_[row]) {
    // First repair: the current span *is* the original — keep it, no copy.
    column.originals_[row] = column.cells_[row];
    column.repaired_[row] = 1;
  }
  SetValue(row, c, v);
}

Tuple Relation::tuple(size_t row) const {
  Tuple t;
  const size_t width = schema_.num_columns();
  t.values_.reserve(width);
  t.marks_.reserve(width);
  t.repaired_.reserve(width);
  t.originals_.resize(width);
  for (size_t c = 0; c < width; ++c) {
    const Column& column = columns_[c];
    t.values_.emplace_back(column.cells_[row]);
    t.marks_.push_back(column.marks_[row]);
    t.repaired_.push_back(column.repaired_[row]);
    if (column.repaired_[row]) t.originals_[c] = std::string(column.originals_[row]);
  }
  return t;
}

void Relation::CommitRow(size_t row, const Tuple& tuple) {
  DETECTIVE_CHECK_EQ(tuple.size(), schema_.num_columns());
  for (ColumnIndex c = 0; c < schema_.num_columns(); ++c) {
    Column& column = columns_[c];
    if (tuple.repaired_[c] && !column.repaired_[row]) {
      // The row was checked out unrepaired and the chase repaired it: its
      // checkout-time value is the original. If that still matches the
      // current cell span, reuse it; otherwise intern the recorded original.
      column.originals_[row] = column.cells_[row] == tuple.originals_[c]
                                   ? column.cells_[row]
                                   : column.arena_.Intern(tuple.originals_[c]);
      column.repaired_[row] = 1;
    }
    if (tuple.marks_[c] == CellMark::kPositive) {
      column.marks_[row] = CellMark::kPositive;  // monotone merge
    }
    if (column.cells_[row] != tuple.values_[c]) {
      column.cells_[row] = column.arena_.Intern(tuple.values_[c]);
    }
  }
}

void Relation::AppendRow(const std::vector<std::string>& values) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column& column = columns_[c];
    column.cells_.push_back(column.arena_.Intern(values[c]));
    column.marks_.push_back(CellMark::kUnknown);
    column.repaired_.push_back(0);
    column.originals_.emplace_back();
  }
  row_ids_.push_back(next_row_id_++);
}

Status Relation::Append(std::vector<std::string> values) {
  if (values.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row has ", values.size(), " values, schema has ",
                                   schema_.num_columns(), " columns");
  }
  AppendRow(values);
  return Status::OK();
}

void Relation::Append(const Tuple& tuple) {
  DETECTIVE_CHECK_EQ(tuple.size(), schema_.num_columns());
  AppendRow(tuple.values_);
  const size_t row = row_ids_.size() - 1;
  for (ColumnIndex c = 0; c < schema_.num_columns(); ++c) {
    Column& column = columns_[c];
    column.marks_[row] = tuple.marks_[c];
    if (tuple.repaired_[c]) {
      column.repaired_[row] = 1;
      column.originals_[row] = column.arena_.Intern(tuple.originals_[c]);
    }
  }
}

size_t Relation::CountPositiveCells() const {
  size_t count = 0;
  for (const Column& column : columns_) {
    for (CellMark mark : column.marks_) {
      count += mark == CellMark::kPositive ? 1 : 0;
    }
  }
  return count;
}

size_t Relation::CountRepairedCells() const {
  size_t count = 0;
  for (const Column& column : columns_) {
    for (uint8_t flag : column.repaired_) count += flag;
  }
  return count;
}

Result<Relation> Relation::FromCsv(std::string_view text) {
  auto rows = ParseCsv(text);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return Status::InvalidArgument("CSV has no header row");
  Relation relation{Schema((*rows)[0])};
  for (size_t i = 1; i < rows->size(); ++i) {
    Status st = relation.Append(std::move((*rows)[i]));
    if (!st.ok()) return st.WithContext("row " + std::to_string(i + 1));
  }
  return relation;
}

Result<Relation> Relation::FromCsvFile(const std::string& path) {
  auto rows = ReadCsvFile(path);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return Status::InvalidArgument(path, " has no header row");
  Relation relation{Schema((*rows)[0])};
  for (size_t i = 1; i < rows->size(); ++i) {
    Status st = relation.Append(std::move((*rows)[i]));
    if (!st.ok()) return st.WithContext(path + " row " + std::to_string(i + 1));
  }
  return relation;
}

std::vector<std::vector<std::string>> Relation::CsvRows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(num_tuples() + 1);
  rows.push_back(schema_.columns());
  for (size_t row = 0; row < num_tuples(); ++row) {
    std::vector<std::string> values;
    values.reserve(schema_.num_columns());
    for (ColumnIndex c = 0; c < schema_.num_columns(); ++c) {
      values.emplace_back(columns_[c].cells_[row]);
    }
    rows.push_back(std::move(values));
  }
  return rows;
}

std::string Relation::ToCsv() const { return FormatCsv(CsvRows()); }

Status Relation::ToCsvFile(const std::string& path) const {
  return WriteCsvFile(path, CsvRows());
}

}  // namespace detective
