#include "relation/relation.h"

#include <sstream>

#include "common/csv.h"
#include "common/logging.h"

namespace detective {

Schema::Schema(std::vector<std::string> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      DETECTIVE_CHECK(columns_[i] != columns_[j])
          << "duplicate column name '" << columns_[i] << "'";
    }
  }
}

ColumnIndex Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<ColumnIndex>(i);
  }
  return kInvalidColumn;
}

Tuple::Tuple(std::vector<std::string> values)
    : values_(std::move(values)),
      marks_(values_.size(), CellMark::kUnknown),
      repaired_(values_.size(), 0),
      originals_(values_.size()) {}

size_t Tuple::CountPositive() const {
  size_t count = 0;
  for (CellMark mark : marks_) count += mark == CellMark::kPositive ? 1 : 0;
  return count;
}

void Tuple::Repair(ColumnIndex column, std::string new_value) {
  if (!repaired_[column]) {
    originals_[column] = values_[column];
    repaired_[column] = 1;
  }
  values_[column] = std::move(new_value);
}

size_t Tuple::CountRepaired() const {
  size_t count = 0;
  for (uint8_t flag : repaired_) count += flag;
  return count;
}

std::string Tuple::ToString() const {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out << ", ";
    out << values_[i];
    if (marks_[i] == CellMark::kPositive) out << "+";
  }
  out << ")";
  return out.str();
}

Status Relation::Append(std::vector<std::string> values) {
  if (values.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row has ", values.size(), " values, schema has ",
                                   schema_.num_columns(), " columns");
  }
  tuples_.emplace_back(std::move(values));
  return Status::OK();
}

void Relation::Append(Tuple tuple) {
  DETECTIVE_CHECK_EQ(tuple.size(), schema_.num_columns());
  tuples_.push_back(std::move(tuple));
}

size_t Relation::CountPositiveCells() const {
  size_t count = 0;
  for (const Tuple& tuple : tuples_) count += tuple.CountPositive();
  return count;
}

Result<Relation> Relation::FromCsv(std::string_view text) {
  auto rows = ParseCsv(text);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return Status::InvalidArgument("CSV has no header row");
  Relation relation{Schema((*rows)[0])};
  for (size_t i = 1; i < rows->size(); ++i) {
    Status st = relation.Append(std::move((*rows)[i]));
    if (!st.ok()) return st.WithContext("row " + std::to_string(i + 1));
  }
  return relation;
}

Result<Relation> Relation::FromCsvFile(const std::string& path) {
  auto rows = ReadCsvFile(path);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return Status::InvalidArgument(path, " has no header row");
  Relation relation{Schema((*rows)[0])};
  for (size_t i = 1; i < rows->size(); ++i) {
    Status st = relation.Append(std::move((*rows)[i]));
    if (!st.ok()) return st.WithContext(path + " row " + std::to_string(i + 1));
  }
  return relation;
}

std::string Relation::ToCsv() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(tuples_.size() + 1);
  rows.push_back(schema_.columns());
  for (const Tuple& tuple : tuples_) rows.push_back(tuple.values());
  return FormatCsv(rows);
}

Status Relation::ToCsvFile(const std::string& path) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(tuples_.size() + 1);
  rows.push_back(schema_.columns());
  for (const Tuple& tuple : tuples_) rows.push_back(tuple.values());
  return WriteCsvFile(path, rows);
}

}  // namespace detective
