#ifndef DETECTIVE_KB_IDS_H_
#define DETECTIVE_KB_IDS_H_

#include <cstdint>
#include <functional>
#include <limits>

namespace detective {

/// Strongly-typed 32-bit index. The tag prevents, e.g., passing a ClassId
/// where an ItemId is expected — a cheap guard for a codebase that juggles
/// four id spaces.
template <typename Tag>
class Id {
 public:
  constexpr Id() : value_(kInvalidValue) {}
  constexpr explicit Id(uint32_t value) : value_(value) {}

  constexpr uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  static constexpr Id Invalid() { return Id(); }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

 private:
  static constexpr uint32_t kInvalidValue = std::numeric_limits<uint32_t>::max();
  uint32_t value_;
};

struct ItemTag {};
struct ClassTag {};
struct RelationTag {};

/// A vertex of the KB graph: an entity (instance) or a literal.
using ItemId = Id<ItemTag>;
/// A class (concept) in the taxonomy, e.g. "city".
using ClassId = Id<ClassTag>;
/// An edge label: a relationship (entity→entity) or property (entity→literal).
using RelationId = Id<RelationTag>;

}  // namespace detective

template <typename Tag>
struct std::hash<detective::Id<Tag>> {
  size_t operator()(detective::Id<Tag> id) const {
    return std::hash<uint32_t>{}(id.value());
  }
};

#endif  // DETECTIVE_KB_IDS_H_
