#ifndef DETECTIVE_KB_KB_STATS_H_
#define DETECTIVE_KB_KB_STATS_H_

#include <string>
#include <vector>

#include "kb/knowledge_base.h"

namespace detective {

/// Aggregate statistics over a KnowledgeBase, for dataset reports (Table II
/// style), capacity planning, and tests that assert projection behaviour.
struct KbStats {
  size_t num_classes = 0;
  size_t num_relations = 0;
  size_t num_entities = 0;
  size_t num_literals = 0;
  size_t num_edges = 0;

  /// Per-class direct + closure instance counts, sorted by descending
  /// closure count then name.
  struct ClassCount {
    std::string name;
    size_t closure_instances = 0;
  };
  std::vector<ClassCount> classes;

  /// Per-relation edge counts, sorted by descending count then name.
  struct RelationCount {
    std::string name;
    size_t edges = 0;
  };
  std::vector<RelationCount> relations;

  /// Out-degree distribution over entities.
  size_t max_out_degree = 0;
  double mean_out_degree = 0;

  /// Multi-line rendering (top `top_k` classes/relations).
  std::string ToString(size_t top_k = 10) const;
};

/// Computes the statistics in one pass over the KB.
KbStats ComputeKbStats(const KnowledgeBase& kb);

}  // namespace detective

#endif  // DETECTIVE_KB_KB_STATS_H_
