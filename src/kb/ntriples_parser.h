#ifndef DETECTIVE_KB_NTRIPLES_PARSER_H_
#define DETECTIVE_KB_NTRIPLES_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "kb/knowledge_base.h"

namespace detective {

/// Resource-exhaustion guards for the triple loaders: a single line longer
/// than kMaxKbLineBytes, or a file with more than kMaxKbLines lines, is
/// rejected with a descriptive Status instead of being buffered without
/// bound.
inline constexpr size_t kMaxKbLineBytes = size_t{1} << 20;  // 1 MiB
inline constexpr size_t kMaxKbLines = 50'000'000;

/// Hand-rolled parser for the N-Triples subset that Yago/DBpedia dumps use
/// in practice (no prefixes, no blank nodes, no datatype/lang tags needed by
/// the cleaning algorithms — tags are accepted and stripped).
///
/// Accepted line forms ('#' starts a comment; blank lines are skipped):
///
///   <subject> <predicate> <object> .
///   <subject> <predicate> "literal value" .
///
/// Three predicates receive schema treatment:
///   rdf:type / <rdf:type>         — types the subject with the object class
///   rdfs:subClassOf               — taxonomy edge between two classes
///   rdfs:label                    — sets the subject's display label
///
/// Every other predicate becomes a relationship (entity object) or property
/// (literal object). IRIs are reduced to their local name; underscores become
/// spaces, so `<Avram_Hershko>` matches the cell value "Avram Hershko".
///
/// The same data can be supplied as TAB-separated values (one triple per
/// line, literal objects double-quoted); see ParseTsvTriples.
Result<KnowledgeBase> ParseNTriples(std::string_view text);
Result<KnowledgeBase> ParseNTriplesFile(const std::string& path);

/// TSV flavour: `subject<TAB>predicate<TAB>object`, with `"..."` marking
/// literal objects. Schema predicates behave as in ParseNTriples.
Result<KnowledgeBase> ParseTsvTriples(std::string_view text);

/// Loads a KB file, dispatching on the extension: `.tsv` selects the TSV
/// triple format, anything else the N-Triples subset. The one loader every
/// CLI tool shares.
Result<KnowledgeBase> LoadKbFile(const std::string& path);

/// Serializes a KnowledgeBase back to the N-Triples subset (round-trips
/// through ParseNTriples; used by tests and by the example programs to show
/// the generated KBs).
std::string ToNTriples(const KnowledgeBase& kb);

/// TSV counterpart of ToNTriples (round-trips through ParseTsvTriples).
std::string ToTsvTriples(const KnowledgeBase& kb);

}  // namespace detective

#endif  // DETECTIVE_KB_NTRIPLES_PARSER_H_
