#include "kb/kb_stats.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace detective {

KbStats ComputeKbStats(const KnowledgeBase& kb) {
  KbStats stats;
  stats.num_classes = kb.num_classes();
  stats.num_relations = kb.num_relations();
  stats.num_entities = kb.num_entities();
  stats.num_literals = kb.num_items() - kb.num_entities();
  stats.num_edges = kb.num_edges();

  stats.classes.reserve(kb.num_classes());
  for (uint32_t c = 0; c < kb.num_classes(); ++c) {
    ClassId cls(c);
    stats.classes.push_back(
        {std::string(kb.ClassName(cls)), kb.InstancesOf(cls).size()});
  }
  std::sort(stats.classes.begin(), stats.classes.end(),
            [](const KbStats::ClassCount& a, const KbStats::ClassCount& b) {
              if (a.closure_instances != b.closure_instances) {
                return a.closure_instances > b.closure_instances;
              }
              return a.name < b.name;
            });

  std::map<uint32_t, size_t> relation_edges;
  size_t total_out = 0;
  for (uint32_t i = 0; i < kb.num_items(); ++i) {
    ItemId item(i);
    if (kb.IsLiteral(item)) continue;
    std::span<const KbEdge> out = kb.OutEdges(item);
    total_out += out.size();
    stats.max_out_degree = std::max(stats.max_out_degree, out.size());
    for (const KbEdge& edge : out) ++relation_edges[edge.relation.value()];
  }
  stats.mean_out_degree =
      kb.num_entities() == 0
          ? 0
          : static_cast<double>(total_out) / static_cast<double>(kb.num_entities());

  stats.relations.reserve(relation_edges.size());
  for (const auto& [relation, count] : relation_edges) {
    stats.relations.push_back(
        {std::string(kb.RelationName(RelationId(relation))), count});
  }
  std::sort(stats.relations.begin(), stats.relations.end(),
            [](const KbStats::RelationCount& a, const KbStats::RelationCount& b) {
              if (a.edges != b.edges) return a.edges > b.edges;
              return a.name < b.name;
            });
  return stats;
}

std::string KbStats::ToString(size_t top_k) const {
  std::ostringstream out;
  out << "classes=" << num_classes << " relations=" << num_relations
      << " entities=" << num_entities << " literals=" << num_literals
      << " edges=" << num_edges << " mean_out_degree=" << mean_out_degree
      << " max_out_degree=" << max_out_degree << "\n";
  out << "top classes:";
  for (size_t i = 0; i < std::min(top_k, classes.size()); ++i) {
    out << " " << classes[i].name << "(" << classes[i].closure_instances << ")";
  }
  out << "\ntop relations:";
  for (size_t i = 0; i < std::min(top_k, relations.size()); ++i) {
    out << " " << relations[i].name << "(" << relations[i].edges << ")";
  }
  out << "\n";
  return out.str();
}

}  // namespace detective
