#include "kb/ntriples_parser.h"

#include <cctype>
#include <fstream>
#include <span>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/fault.h"
#include "common/string_util.h"

namespace detective {

namespace {

/// Shared per-line guard for both triple formats (kMaxKbLineBytes /
/// kMaxKbLines, ntriples_parser.h).
Status CheckLineLimits(std::string_view line, size_t line_number) {
  if (line.size() > kMaxKbLineBytes) {
    return Status::ParseError("line ", line_number, " exceeds the line limit of ",
                              kMaxKbLineBytes, " bytes");
  }
  if (line_number > kMaxKbLines) {
    return Status::ParseError("input exceeds the line limit of ", kMaxKbLines,
                              " lines");
  }
  return Status::OK();
}

/// Annotates a per-line parse error with the line's byte offset into the
/// input and a truncated copy of the offending line, so a bad record in a
/// multi-gigabyte KB dump can be found with `dd`/`tail -c` instead of
/// re-counting lines.
Status AnnotateLineError(const Status& st, std::string_view line,
                         size_t byte_offset) {
  constexpr size_t kMaxQuoted = 120;
  std::string quoted(line.substr(0, kMaxQuoted));
  for (char& c : quoted) {
    if (c == '\t') c = ' ';  // keep the quote one terminal line
  }
  return Status::ParseError(st.message(), " (byte offset ", byte_offset,
                            "): \"", quoted,
                            line.size() > kMaxQuoted ? "\"..." : "\"");
}

constexpr std::string_view kTypePredicates[] = {"rdf:type", "a", "type"};
constexpr std::string_view kSubclassPredicates[] = {"rdfs:subClassOf", "subClassOf"};
constexpr std::string_view kLabelPredicates[] = {"rdfs:label", "label"};
constexpr std::string_view kClassMarkers[] = {"rdfs:Class", "owl:Class"};

bool IsAnyOf(std::string_view name, std::span<const std::string_view> set) {
  for (std::string_view candidate : set) {
    if (name == candidate) return true;
  }
  return false;
}

/// A triple whose IRIs have been reduced to local names but whose role
/// (class vs entity) is not yet known.
struct RawTriple {
  std::string subject;
  std::string predicate;
  std::string object;
  bool object_is_literal = false;
};

/// Strips a namespace prefix and turns underscores into spaces so IRIs match
/// relational cell values ("Avram_Hershko" -> "Avram Hershko"). Predicates
/// keep their prefix if it is a schema one (rdf:/rdfs:/owl:).
std::string PrettifyLocalName(std::string_view iri) {
  size_t cut = iri.find_last_of("/#");
  std::string_view local = cut == std::string_view::npos ? iri : iri.substr(cut + 1);
  return ReplaceAll(local, "_", " ");
}

/// Parses a quoted literal starting at text[pos] == '"'. Handles \" \\ \n \t
/// escapes and strips trailing @lang / ^^<datatype> suffixes.
Status ParseLiteral(std::string_view text, size_t* pos, std::string* out,
                    size_t line_number) {
  size_t i = *pos + 1;  // skip opening quote
  out->clear();
  while (i < text.size()) {
    char c = text[i];
    if (c == '\\' && i + 1 < text.size()) {
      char next = text[i + 1];
      switch (next) {
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case '"':
        case '\\':
          out->push_back(next);
          break;
        default:
          out->push_back(next);
          break;
      }
      i += 2;
      continue;
    }
    if (c == '"') {
      i += 1;
      // Skip @lang or ^^<datatype> suffix.
      if (i < text.size() && text[i] == '@') {
        while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
      } else if (i + 1 < text.size() && text[i] == '^' && text[i + 1] == '^') {
        while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
      }
      *pos = i;
      return Status::OK();
    }
    out->push_back(c);
    ++i;
  }
  return Status::ParseError("unterminated literal on line ", line_number);
}

Status ParseNTriplesLine(std::string_view line, size_t line_number,
                         std::vector<RawTriple>* out) {
  std::string_view trimmed = TrimView(line);
  if (trimmed.empty() || trimmed.front() == '#') return Status::OK();

  auto skip_ws = [&](size_t i) {
    while (i < trimmed.size() && std::isspace(static_cast<unsigned char>(trimmed[i]))) ++i;
    return i;
  };
  auto read_iri = [&](size_t* i, std::string_view* iri) -> Status {
    if (*i >= trimmed.size() || trimmed[*i] != '<') {
      return Status::ParseError("expected '<' on line ", line_number);
    }
    size_t end = trimmed.find('>', *i);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated IRI on line ", line_number);
    }
    *iri = trimmed.substr(*i + 1, end - *i - 1);
    *i = end + 1;
    return Status::OK();
  };

  RawTriple triple;
  size_t i = 0;
  std::string_view subject_iri;
  RETURN_NOT_OK(read_iri(&i, &subject_iri));
  triple.subject = std::string(subject_iri);

  i = skip_ws(i);
  // Predicates may be bare tokens (rdf:type, a) or IRIs.
  if (i < trimmed.size() && trimmed[i] == '<') {
    std::string_view predicate_iri;
    RETURN_NOT_OK(read_iri(&i, &predicate_iri));
    triple.predicate = std::string(predicate_iri);
  } else {
    size_t start = i;
    while (i < trimmed.size() && !std::isspace(static_cast<unsigned char>(trimmed[i]))) ++i;
    if (start == i) return Status::ParseError("missing predicate on line ", line_number);
    triple.predicate = std::string(trimmed.substr(start, i - start));
  }

  i = skip_ws(i);
  if (i >= trimmed.size()) {
    return Status::ParseError("missing object on line ", line_number);
  }
  if (trimmed[i] == '"') {
    RETURN_NOT_OK(ParseLiteral(trimmed, &i, &triple.object, line_number));
    triple.object_is_literal = true;
  } else {
    std::string_view object_iri;
    RETURN_NOT_OK(read_iri(&i, &object_iri));
    triple.object = std::string(object_iri);
  }

  i = skip_ws(i);
  if (i >= trimmed.size() || trimmed[i] != '.') {
    return Status::ParseError("expected terminating '.' on line ", line_number);
  }
  if (skip_ws(i + 1) != trimmed.size()) {
    return Status::ParseError("trailing content after '.' on line ", line_number);
  }
  out->push_back(std::move(triple));
  return Status::OK();
}

Status ParseTsvLine(std::string_view line, size_t line_number,
                    std::vector<RawTriple>* out) {
  std::string_view trimmed = TrimView(line);
  if (trimmed.empty() || trimmed.front() == '#') return Status::OK();
  std::vector<std::string> fields = Split(trimmed, '\t');
  if (fields.size() != 3) {
    return Status::ParseError("expected 3 tab-separated fields on line ", line_number,
                              ", got ", fields.size());
  }
  RawTriple triple;
  triple.subject = Trim(fields[0]);
  triple.predicate = Trim(fields[1]);
  std::string object = Trim(fields[2]);
  if (object.size() >= 2 && object.front() == '"' && object.back() == '"') {
    triple.object = object.substr(1, object.size() - 2);
    triple.object_is_literal = true;
  } else {
    triple.object = std::move(object);
  }
  if (triple.subject.empty() || triple.predicate.empty()) {
    return Status::ParseError("empty subject or predicate on line ", line_number);
  }
  out->push_back(std::move(triple));
  return Status::OK();
}

/// Second pass shared by both formats: decide which names denote classes,
/// then build the KB.
Result<KnowledgeBase> BuildFromTriples(const std::vector<RawTriple>& triples) {
  // A name is a class iff it appears as (a) the object of rdf:type (unless
  // that object is the explicit class marker, which classifies the subject),
  // or (b) either side of rdfs:subClassOf.
  std::unordered_set<std::string> class_names;
  for (const RawTriple& t : triples) {
    if (IsAnyOf(t.predicate, kSubclassPredicates)) {
      class_names.insert(t.subject);
      class_names.insert(t.object);
    } else if (IsAnyOf(t.predicate, kTypePredicates) && !t.object_is_literal) {
      if (IsAnyOf(t.object, kClassMarkers)) {
        class_names.insert(t.subject);
      } else {
        class_names.insert(t.object);
      }
    }
  }

  // Explicit rdfs:label beats the prettified IRI; collect before creating
  // any entity so the right label is used regardless of triple order.
  std::unordered_map<std::string, std::string> labels;  // iri -> explicit label
  for (const RawTriple& t : triples) {
    if (IsAnyOf(t.predicate, kLabelPredicates) && t.object_is_literal) {
      labels[t.subject] = t.object;
    }
  }

  KbBuilder builder;
  std::unordered_map<std::string, ClassId> class_ids;
  class_ids.reserve(class_names.size());
  for (const std::string& name : class_names) {
    class_ids.emplace(name, builder.AddClass(PrettifyLocalName(name)));
  }

  // Entities are identified by IRI (not by label): create lazily.
  std::unordered_map<std::string, ItemId> entity_ids;
  auto entity_for = [&](const std::string& iri) {
    auto [it, inserted] = entity_ids.try_emplace(iri, ItemId::Invalid());
    if (inserted) {
      auto label_it = labels.find(iri);
      it->second = builder.AddEntity(
          label_it != labels.end() ? label_it->second : PrettifyLocalName(iri), {});
    }
    return it->second;
  };

  for (const RawTriple& t : triples) {
    if (IsAnyOf(t.predicate, kSubclassPredicates)) continue;  // handled below
    if (IsAnyOf(t.predicate, kTypePredicates) && !t.object_is_literal) {
      if (IsAnyOf(t.object, kClassMarkers)) continue;  // class declaration
      if (class_names.contains(t.subject)) continue;   // classes aren't entities
      builder.AddClassToEntity(entity_for(t.subject), class_ids.at(t.object));
      continue;
    }
    if (IsAnyOf(t.predicate, kLabelPredicates) && t.object_is_literal) {
      continue;  // applied at entity creation
    }
    ItemId subject = entity_for(t.subject);
    RelationId relation = builder.AddRelation(PrettifyLocalName(t.predicate));
    ItemId object = t.object_is_literal ? builder.AddLiteral(t.object)
                                        : entity_for(t.object);
    builder.AddEdge(subject, relation, object);
  }

  for (const RawTriple& t : triples) {
    if (!IsAnyOf(t.predicate, kSubclassPredicates)) continue;
    builder.AddSubclass(PrettifyLocalName(t.subject), PrettifyLocalName(t.object));
  }

  KnowledgeBase kb;
  Status st = std::move(builder).FreezeInto(&kb);
  if (!st.ok()) return st;
  return kb;
}

Result<std::vector<RawTriple>> TokenizeNTriples(std::string_view text) {
  std::vector<RawTriple> triples;
  size_t line_number = 1;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = end == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, end - start);
    Status st = CheckLineLimits(line, line_number);
    if (st.ok()) st = ParseNTriplesLine(line, line_number, &triples);
    if (!st.ok()) return AnnotateLineError(st, line, start);
    if (end == std::string_view::npos) break;
    start = end + 1;
    ++line_number;
  }
  return triples;
}

}  // namespace

Result<KnowledgeBase> ParseNTriples(std::string_view text) {
  auto triples = TokenizeNTriples(text);
  if (!triples.ok()) return triples.status();
  return BuildFromTriples(*triples);
}

namespace {

/// Reads the whole file, retrying transient I/O failures (including
/// injected ones at the "kb.load" probe) with capped backoff; parse errors
/// downstream are permanent and never retried.
Result<std::string> ReadKbFile(const std::string& path) {
  return fault::RetryTransient([&]() -> Result<std::string> {
    DETECTIVE_FAULT_POINT("kb.load");
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return Status::IOError("read failed for ", path);
    return buffer.str();
  });
}

}  // namespace

Result<KnowledgeBase> ParseNTriplesFile(const std::string& path) {
  auto text = ReadKbFile(path);
  if (!text.ok()) return text.status();
  return ParseNTriples(*text);
}

Result<KnowledgeBase> LoadKbFile(const std::string& path) {
  if (!EndsWith(path, ".tsv")) return ParseNTriplesFile(path);
  auto text = ReadKbFile(path);
  if (!text.ok()) return text.status();
  return ParseTsvTriples(*text);
}

Result<KnowledgeBase> ParseTsvTriples(std::string_view text) {
  std::vector<RawTriple> triples;
  size_t line_number = 1;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = end == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, end - start);
    Status st = CheckLineLimits(line, line_number);
    if (st.ok()) st = ParseTsvLine(line, line_number, &triples);
    if (!st.ok()) return AnnotateLineError(st, line, start);
    if (end == std::string_view::npos) break;
    start = end + 1;
    ++line_number;
  }
  return BuildFromTriples(triples);
}

namespace {

std::string EscapeIri(std::string_view label) {
  std::string out = ReplaceAll(label, " ", "_");
  // Angle brackets and whitespace are the only characters our reader cannot
  // round-trip inside an IRI.
  out = ReplaceAll(out, "<", "(");
  out = ReplaceAll(out, ">", ")");
  return out;
}

std::string EscapeLiteral(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string ToNTriples(const KnowledgeBase& kb) {
  std::ostringstream out;
  // Class declarations and taxonomy.
  for (uint32_t c = 0; c < kb.num_classes(); ++c) {
    ClassId cls(c);
    if (cls == kb.literal_class()) continue;
    std::string class_iri = EscapeIri(kb.ClassName(cls));
    out << "<" << class_iri << "> rdf:type <rdfs:Class> .\n";
    // Direct parents are not exposed; emit the ancestor closure minus self,
    // which parses back to an equivalent taxonomy.
    for (ClassId ancestor : kb.AncestorsOf(cls)) {
      if (ancestor == cls) continue;
      out << "<" << class_iri << "> rdfs:subClassOf <"
          << EscapeIri(kb.ClassName(ancestor)) << "> .\n";
    }
  }
  // Entities: identity is the item id, label carried via rdfs:label.
  auto iri_of = [](ItemId id) { return "e" + std::to_string(id.value()); };
  for (uint32_t i = 0; i < kb.num_items(); ++i) {
    ItemId item(i);
    if (kb.IsLiteral(item)) continue;
    out << "<" << iri_of(item) << "> rdfs:label \"" << EscapeLiteral(kb.Label(item))
        << "\" .\n";
    for (ClassId cls : kb.DirectClasses(item)) {
      out << "<" << iri_of(item) << "> rdf:type <" << EscapeIri(kb.ClassName(cls))
          << "> .\n";
    }
    for (const KbEdge& edge : kb.OutEdges(item)) {
      out << "<" << iri_of(item) << "> <" << EscapeIri(kb.RelationName(edge.relation))
          << "> ";
      if (kb.IsLiteral(edge.target)) {
        out << "\"" << EscapeLiteral(kb.Label(edge.target)) << "\"";
      } else {
        out << "<" << iri_of(edge.target) << ">";
      }
      out << " .\n";
    }
  }
  return out.str();
}

std::string ToTsvTriples(const KnowledgeBase& kb) {
  std::ostringstream out;
  auto iri_of = [](ItemId id) { return "e" + std::to_string(id.value()); };
  for (uint32_t c = 0; c < kb.num_classes(); ++c) {
    ClassId cls(c);
    if (cls == kb.literal_class()) continue;
    std::string class_iri = EscapeIri(kb.ClassName(cls));
    out << class_iri << "\trdf:type\trdfs:Class\n";
    for (ClassId ancestor : kb.AncestorsOf(cls)) {
      if (ancestor == cls) continue;
      out << class_iri << "\trdfs:subClassOf\t" << EscapeIri(kb.ClassName(ancestor))
          << "\n";
    }
  }
  for (uint32_t i = 0; i < kb.num_items(); ++i) {
    ItemId item(i);
    if (kb.IsLiteral(item)) continue;
    // TSV fields cannot hold tabs/newlines; labels are normalized at build
    // time so plain emission is safe.
    out << iri_of(item) << "\trdfs:label\t\"" << kb.Label(item) << "\"\n";
    for (ClassId cls : kb.DirectClasses(item)) {
      out << iri_of(item) << "\trdf:type\t" << EscapeIri(kb.ClassName(cls)) << "\n";
    }
    for (const KbEdge& edge : kb.OutEdges(item)) {
      out << iri_of(item) << "\t" << EscapeIri(kb.RelationName(edge.relation))
          << "\t";
      if (kb.IsLiteral(edge.target)) {
        out << "\"" << kb.Label(edge.target) << "\"";
      } else {
        out << iri_of(edge.target);
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace detective
