#include "kb/knowledge_base.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace detective {

namespace {
constexpr std::string_view kLiteralClassName = "literal";
}  // namespace

// ---- KnowledgeBase queries --------------------------------------------------

ClassId KnowledgeBase::FindClass(std::string_view name) const {
  auto it = class_by_name_.find(std::string(name));
  return it == class_by_name_.end() ? ClassId::Invalid() : it->second;
}

RelationId KnowledgeBase::FindRelation(std::string_view name) const {
  auto it = relation_by_name_.find(std::string(name));
  return it == relation_by_name_.end() ? RelationId::Invalid() : it->second;
}

std::string_view KnowledgeBase::ClassName(ClassId id) const {
  return classes_[id.value()].name;
}

std::string_view KnowledgeBase::RelationName(RelationId id) const {
  return relation_names_[id.value()];
}

std::span<const ClassId> KnowledgeBase::DirectClasses(ItemId id) const {
  const size_t i = id.value();
  return std::span<const ClassId>(item_class_pool_)
      .subspan(static_cast<size_t>(item_class_offsets_[i]),
               static_cast<size_t>(item_class_offsets_[i + 1] -
                                   item_class_offsets_[i]));
}

bool KnowledgeBase::IsInstanceOf(ItemId item, ClassId cls) const {
  DETECTIVE_COUNT("kb.instance_checks");
  if (IsLiteral(item)) return cls == literal_class_;
  if (cls == literal_class_) return false;
  for (ClassId direct : DirectClasses(item)) {
    const std::vector<ClassId>& ancestors = classes_[direct.value()].ancestors;
    if (std::binary_search(ancestors.begin(), ancestors.end(), cls)) return true;
  }
  return false;
}

std::span<const ItemId> KnowledgeBase::InstancesOf(ClassId cls) const {
  return classes_[cls.value()].instances;
}

std::span<const ItemId> KnowledgeBase::ItemsWithLabel(std::string_view label) const {
  DETECTIVE_COUNT("kb.label_lookups");
  // Groups are ordered by strictly increasing label: binary search for it.
  size_t lo = 0;
  size_t hi = label_group_offsets_.empty() ? 0 : label_group_offsets_.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (GroupLabel(mid) < label) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == label_group_offsets_.size() - 1 || label_group_offsets_.empty() ||
      GroupLabel(lo) != label) {
    return {};
  }
  DETECTIVE_COUNT("kb.label_hits");
  return std::span<const ItemId>(label_group_pool_)
      .subspan(static_cast<size_t>(label_group_offsets_[lo]),
               static_cast<size_t>(label_group_offsets_[lo + 1] -
                                   label_group_offsets_[lo]));
}

std::span<const KbEdge> KnowledgeBase::OutEdges(ItemId source) const {
  const size_t i = source.value();
  return std::span<const KbEdge>(out_edge_pool_)
      .subspan(static_cast<size_t>(out_edge_offsets_[i]),
               static_cast<size_t>(out_edge_offsets_[i + 1] -
                                   out_edge_offsets_[i]));
}

std::span<const KbEdge> KnowledgeBase::InEdges(ItemId target) const {
  const size_t i = target.value();
  return std::span<const KbEdge>(in_edge_pool_)
      .subspan(static_cast<size_t>(in_edge_offsets_[i]),
               static_cast<size_t>(in_edge_offsets_[i + 1] -
                                   in_edge_offsets_[i]));
}

std::span<const KbEdge> KnowledgeBase::EdgeRange(std::span<const KbEdge> edges,
                                                 RelationId relation) {
  auto lower = std::lower_bound(
      edges.begin(), edges.end(), relation,
      [](const KbEdge& e, RelationId r) { return e.relation < r; });
  auto upper = std::upper_bound(
      edges.begin(), edges.end(), relation,
      [](RelationId r, const KbEdge& e) { return r < e.relation; });
  return edges.subspan(static_cast<size_t>(lower - edges.begin()),
                       static_cast<size_t>(upper - lower));
}

std::span<const KbEdge> KnowledgeBase::Objects(ItemId source,
                                               RelationId relation) const {
  DETECTIVE_COUNT("kb.edge_queries");
  std::span<const KbEdge> edges = OutEdges(source);
  if (edges.empty()) return {};
  return EdgeRange(edges, relation);
}

std::span<const KbEdge> KnowledgeBase::Subjects(RelationId relation,
                                                ItemId target) const {
  DETECTIVE_COUNT("kb.edge_queries");
  std::span<const KbEdge> edges = InEdges(target);
  if (edges.empty()) return {};
  return EdgeRange(edges, relation);
}

bool KnowledgeBase::HasEdge(ItemId source, RelationId relation, ItemId target) const {
  DETECTIVE_COUNT("kb.edge_checks");
  std::span<const KbEdge> edges = OutEdges(source);
  return std::binary_search(edges.begin(), edges.end(), KbEdge{relation, target});
}

std::span<const ClassId> KnowledgeBase::AncestorsOf(ClassId cls) const {
  return classes_[cls.value()].ancestors;
}

bool KnowledgeBase::IsSubclassOf(ClassId sub, ClassId super) const {
  const std::vector<ClassId>& ancestors = classes_[sub.value()].ancestors;
  return std::binary_search(ancestors.begin(), ancestors.end(), super);
}

std::string KnowledgeBase::DebugSummary() const {
  std::ostringstream out;
  out << "KnowledgeBase{classes=" << num_classes() << ", relations=" << num_relations()
      << ", entities=" << num_entities() << ", literals=" << (num_items() - num_entities())
      << ", edges=" << num_edges() << "}";
  return out.str();
}

// ---- KbBuilder ---------------------------------------------------------------

KbBuilder::KbBuilder() {
  kb_.label_offsets_.push_back(0);
  kb_.literal_class_ = AddClass(kLiteralClassName);
}

ClassId KbBuilder::AddClass(std::string_view name,
                            const std::vector<std::string>& parents) {
  std::string key(name);
  auto [it, inserted] = kb_.class_by_name_.try_emplace(key, ClassId::Invalid());
  if (inserted) {
    it->second = ClassId(static_cast<uint32_t>(kb_.classes_.size()));
    kb_.classes_.push_back({.name = std::move(key), .parents = {}, .ancestors = {},
                            .instances = {}});
  }
  ClassId id = it->second;
  for (const std::string& parent : parents) {
    ClassId parent_id = AddClass(parent);
    kb_.classes_[id.value()].parents.push_back(parent_id);
  }
  return id;
}

void KbBuilder::AddSubclass(std::string_view sub, std::string_view super) {
  ClassId sub_id = AddClass(sub);
  ClassId super_id = AddClass(super);
  kb_.classes_[sub_id.value()].parents.push_back(super_id);
}

RelationId KbBuilder::AddRelation(std::string_view name) {
  std::string key(name);
  auto [it, inserted] =
      kb_.relation_by_name_.try_emplace(key, RelationId::Invalid());
  if (inserted) {
    it->second = RelationId(static_cast<uint32_t>(kb_.relation_names_.size()));
    kb_.relation_names_.push_back(std::move(key));
  }
  return it->second;
}

ItemId KbBuilder::AddEntity(std::string_view label,
                            const std::vector<ClassId>& classes) {
  ItemId id(static_cast<uint32_t>(num_items()));
  std::string normalized = NormalizeWhitespace(label);
  items_by_label_[normalized].push_back(id);
  kb_.label_blob_ += normalized;
  kb_.label_offsets_.push_back(kb_.label_blob_.size());
  kb_.literal_flags_.push_back(0);
  item_classes_.push_back(classes);
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  ++kb_.num_entities_;
  return id;
}

void KbBuilder::AddClassToEntity(ItemId entity, ClassId cls) {
  DETECTIVE_CHECK(kb_.literal_flags_[entity.value()] == 0);
  item_classes_[entity.value()].push_back(cls);
}

ItemId KbBuilder::AddLiteral(std::string_view value) {
  std::string normalized = NormalizeWhitespace(value);
  auto [it, inserted] = literal_by_value_.try_emplace(normalized, ItemId::Invalid());
  if (!inserted) return it->second;
  ItemId id(static_cast<uint32_t>(num_items()));
  it->second = id;
  items_by_label_[normalized].push_back(id);
  kb_.label_blob_ += normalized;
  kb_.label_offsets_.push_back(kb_.label_blob_.size());
  kb_.literal_flags_.push_back(1);
  item_classes_.emplace_back();
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

void KbBuilder::AddEdge(ItemId subject, RelationId relation, ItemId object) {
  DETECTIVE_CHECK(subject.valid() && relation.valid() && object.valid());
  DETECTIVE_CHECK(kb_.literal_flags_[subject.value()] == 0)
      << "literals cannot be triple subjects";
  out_edges_[subject.value()].push_back({relation, object});
  in_edges_[object.value()].push_back({relation, subject});
}

ItemId KbBuilder::FindEntity(std::string_view label) const {
  auto it = items_by_label_.find(NormalizeWhitespace(label));
  if (it == items_by_label_.end()) return ItemId::Invalid();
  for (ItemId id : it->second) {
    if (kb_.literal_flags_[id.value()] == 0) return id;
  }
  return ItemId::Invalid();
}

Status KbBuilder::FreezeInto(KnowledgeBase* out) && {
  DETECTIVE_SCOPED_TIMER("kb.freeze");
  DETECTIVE_TRACE_SPAN("kb.freeze",
                       {"items", static_cast<int64_t>(num_items())});
  const size_t num_classes = kb_.classes_.size();

  // Ancestor closure by DFS with cycle detection (0 = white, 1 = on stack,
  // 2 = done). The taxonomy is small relative to the instance data, so the
  // quadratic worst case of storing full closures is acceptable and buys
  // O(log a) IsInstanceOf checks.
  std::vector<int> color(num_classes, 0);
  std::vector<std::vector<ClassId>> closures(num_classes);
  // Iterative DFS to keep deep taxonomies off the call stack.
  for (uint32_t root = 0; root < num_classes; ++root) {
    if (color[root] != 0) continue;
    std::vector<std::pair<uint32_t, size_t>> stack;  // (class, next parent idx)
    stack.emplace_back(root, 0);
    color[root] = 1;
    while (!stack.empty()) {
      auto& [cls, next] = stack.back();
      const std::vector<ClassId>& parents = kb_.classes_[cls].parents;
      if (next < parents.size()) {
        ClassId parent = parents[next++];
        if (color[parent.value()] == 1) {
          return Status::InvalidArgument("subClassOf cycle involving class '",
                                         kb_.classes_[parent.value()].name, "'");
        }
        if (color[parent.value()] == 0) {
          color[parent.value()] = 1;
          stack.emplace_back(parent.value(), 0);
        }
        continue;
      }
      // All parents done: closure = self ∪ parents' closures.
      std::vector<ClassId>& closure = closures[cls];
      closure.push_back(ClassId(cls));
      for (ClassId parent : parents) {
        const std::vector<ClassId>& pc = closures[parent.value()];
        closure.insert(closure.end(), pc.begin(), pc.end());
      }
      std::sort(closure.begin(), closure.end());
      closure.erase(std::unique(closure.begin(), closure.end()), closure.end());
      color[cls] = 2;
      stack.pop_back();
    }
  }
  for (uint32_t c = 0; c < num_classes; ++c) {
    kb_.classes_[c].ancestors = std::move(closures[c]);
  }

  // Per-class instance lists over the closure: every entity contributes to
  // each ancestor of each of its direct classes. Literals go to the literal
  // class only.
  for (uint32_t i = 0; i < num_items(); ++i) {
    ItemId item(i);
    if (kb_.literal_flags_[i] != 0) {
      kb_.classes_[kb_.literal_class_.value()].instances.push_back(item);
      continue;
    }
    // Dedup ancestors across multiple direct classes.
    std::vector<ClassId> all;
    for (ClassId direct : item_classes_[i]) {
      const std::vector<ClassId>& anc = kb_.classes_[direct.value()].ancestors;
      all.insert(all.end(), anc.begin(), anc.end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    for (ClassId cls : all) kb_.classes_[cls.value()].instances.push_back(item);
  }
  // Sort + dedup adjacency for binary-searchable edge queries.
  size_t edge_count = 0;
  for (std::vector<KbEdge>& edges : out_edges_) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    edge_count += edges.size();
  }
  for (std::vector<KbEdge>& edges : in_edges_) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
  kb_.num_edges_ = edge_count;

  // Flatten the per-item building vectors into the frozen pools.
  const size_t items = num_items();
  kb_.item_class_offsets_.reserve(items + 1);
  kb_.item_class_offsets_.push_back(0);
  size_t class_total = 0;
  for (const auto& classes : item_classes_) class_total += classes.size();
  kb_.item_class_pool_.reserve(class_total);
  for (const auto& classes : item_classes_) {
    kb_.item_class_pool_.insert(kb_.item_class_pool_.end(), classes.begin(),
                                classes.end());
    kb_.item_class_offsets_.push_back(kb_.item_class_pool_.size());
  }
  auto flatten_edges = [items](const std::vector<std::vector<KbEdge>>& rows,
                               std::vector<uint64_t>* offsets,
                               std::vector<KbEdge>* pool) {
    offsets->reserve(items + 1);
    offsets->push_back(0);
    size_t total = 0;
    for (const auto& row : rows) total += row.size();
    pool->reserve(total);
    for (const auto& row : rows) {
      pool->insert(pool->end(), row.begin(), row.end());
      offsets->push_back(pool->size());
    }
  };
  flatten_edges(out_edges_, &kb_.out_edge_offsets_, &kb_.out_edge_pool_);
  flatten_edges(in_edges_, &kb_.in_edge_offsets_, &kb_.in_edge_pool_);

  // Label index: groups ordered by label so the frozen lookup is a binary
  // search (and the snapshot bytes are deterministic).
  std::vector<const std::pair<const std::string, std::vector<ItemId>>*> groups;
  groups.reserve(items_by_label_.size());
  for (const auto& entry : items_by_label_) groups.push_back(&entry);
  std::sort(groups.begin(), groups.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  kb_.label_group_offsets_.reserve(groups.size() + 1);
  kb_.label_group_offsets_.push_back(0);
  size_t group_total = 0;
  for (const auto* group : groups) group_total += group->second.size();
  kb_.label_group_pool_.reserve(group_total);
  for (const auto* group : groups) {
    kb_.label_group_pool_.insert(kb_.label_group_pool_.end(),
                                 group->second.begin(), group->second.end());
    kb_.label_group_offsets_.push_back(kb_.label_group_pool_.size());
  }

  *out = std::move(kb_);
  return Status::OK();
}

KnowledgeBase KbBuilder::Freeze() && {
  KnowledgeBase kb;
  std::move(*this).FreezeInto(&kb).Abort("KbBuilder::Freeze");
  return kb;
}

}  // namespace detective
