#ifndef DETECTIVE_KB_SNAPSHOT_H_
#define DETECTIVE_KB_SNAPSHOT_H_

// Binary KB snapshots: a frozen KnowledgeBase serialized into one versioned,
// checksummed, offset-based file so a cleaning run (or the serving daemon)
// can load the fig8 Yago KB in milliseconds instead of re-parsing N-triples
// text and re-freezing indexes on every cold start.
//
// Layout (all integers little-endian, sections 8-byte aligned):
//
//   header   : magic "DTCTVKB1" | version u32 | header_bytes u32
//              payload_bytes u64 | payload checksum u64 | reserved u64[3]
//   preamble : item/entity/edge/class/relation counts, literal class id,
//              label-group count, string-blob byte count
//   strings  : one offset array (class names, relation names, item labels
//              concatenated in id order) + the interned blob
//   classes  : parents / ancestors / instances as offset array + id pool
//   items    : is_literal flags | direct classes | out-edges | in-edges,
//              each as offset array + flat pool (KbEdge pairs for edges)
//   labels   : label index as groups of item ids sharing one label
//
// Everything after the header is covered by the checksum, and every id and
// offset is bounds-checked before use, so a truncated, bit-flipped, or
// hand-crafted file fails closed with a ParseError naming the mismatch
// (magic / version / checksum / structure) — it never crashes the loader.
// Loading is a single mmap + one bounds-checking pass + direct reconstruction
// of the frozen structures: no per-triple parsing, no label normalization, no
// taxonomy DFS, no adjacency sort.
//
// Versioning policy: `kKbSnapshotVersion` bumps on any layout change; readers
// reject other versions outright (snapshots are cheap to rebuild with
// detective_kb_build, so there is no cross-version migration path).

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "kb/knowledge_base.h"

namespace detective {

/// First bytes of every snapshot file; what magic-sniffing dispatches on.
inline constexpr std::string_view kKbSnapshotMagic = "DTCTVKB1";
/// Current layout version; bumped on any incompatible change.
inline constexpr uint32_t kKbSnapshotVersion = 1;

/// Serializes `kb` into snapshot bytes.
std::string SerializeKbSnapshot(const KnowledgeBase& kb);

/// Writes `kb` as a snapshot file at `path` (via SerializeKbSnapshot).
Status WriteKbSnapshot(const KnowledgeBase& kb, const std::string& path);

/// Reconstructs a KnowledgeBase from snapshot bytes. Fails closed with a
/// ParseError naming the offending field (magic, version, checksum, or the
/// structurally invalid section) — never crashes on arbitrary input.
Result<KnowledgeBase> ParseKbSnapshot(std::string_view bytes);

/// Maps `path` and parses it (ParseKbSnapshot). IO failures (missing file,
/// short read) are IOError; format failures are ParseError.
Result<KnowledgeBase> LoadKbSnapshot(const std::string& path);

/// True when `bytes` starts with the snapshot magic.
bool HasKbSnapshotMagic(std::string_view bytes);

/// Sniffs the first bytes of `path` for the snapshot magic; IOError when the
/// file cannot be read.
Result<bool> FileHasKbSnapshotMagic(const std::string& path);

/// Deep structural equality — vocabulary, labels, classes (parents,
/// ancestors, instances), edges, label index, literal flags. What the
/// round-trip tests and `detective_kb_build --verify` assert. On mismatch,
/// returns false and (when `diff` is non-null) describes the first
/// difference found.
bool KbEquals(const KnowledgeBase& a, const KnowledgeBase& b,
              std::string* diff = nullptr);

}  // namespace detective

#endif  // DETECTIVE_KB_SNAPSHOT_H_
