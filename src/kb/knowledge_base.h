#ifndef DETECTIVE_KB_KNOWLEDGE_BASE_H_
#define DETECTIVE_KB_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "kb/ids.h"

namespace detective {

/// One edge of the KB graph, in query results.
struct KbEdge {
  RelationId relation;
  ItemId target;

  friend bool operator==(const KbEdge&, const KbEdge&) = default;
  friend bool operator<(const KbEdge& a, const KbEdge& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.target < b.target;
  }
};

/// In-memory RDF-style knowledge base (paper §II-A).
///
/// Vertices ("items") are entities or literals; labelled directed edges carry
/// relationships (entity→entity) and properties (entity→literal); entities
/// belong to classes arranged in a subClassOf taxonomy (Yago-style).
///
/// A KnowledgeBase is immutable: construct one through `KbBuilder` (which
/// finalizes indexes) or a parser in ntriples_parser.h. All queries are
/// const, O(log degree) or better, and thread-compatible.
///
/// The frozen representation is arena-style: item labels live in one
/// concatenated blob addressed by an offsets array, and the per-item class
/// lists, adjacency lists, and the label index are flat pools sliced by
/// offset arrays — no per-item heap objects. That keeps cache locality high
/// and lets kb/snapshot.h reconstruct a KB from its binary snapshot with a
/// handful of bulk array reads instead of millions of small allocations.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;
  KnowledgeBase(KnowledgeBase&&) noexcept = default;
  KnowledgeBase& operator=(KnowledgeBase&&) noexcept = default;

  // ---- Vocabulary lookups --------------------------------------------------

  /// Id of the built-in class that types all literals. Always valid.
  ClassId literal_class() const { return literal_class_; }

  /// Finds a class/relation by name; Invalid() when absent.
  ClassId FindClass(std::string_view name) const;
  RelationId FindRelation(std::string_view name) const;

  std::string_view ClassName(ClassId id) const;
  std::string_view RelationName(RelationId id) const;

  size_t num_classes() const { return classes_.size(); }
  size_t num_relations() const { return relation_names_.size(); }
  size_t num_items() const { return literal_flags_.size(); }
  size_t num_entities() const { return num_entities_; }
  size_t num_edges() const { return num_edges_; }

  // ---- Item queries --------------------------------------------------------

  std::string_view Label(ItemId id) const {
    const size_t i = id.value();
    return std::string_view(label_blob_)
        .substr(static_cast<size_t>(label_offsets_[i]),
                static_cast<size_t>(label_offsets_[i + 1] - label_offsets_[i]));
  }
  bool IsLiteral(ItemId id) const { return literal_flags_[id.value()] != 0; }

  /// Direct classes of an entity (empty for literals).
  std::span<const ClassId> DirectClasses(ItemId id) const;

  /// True iff `item` is an instance of `cls`, honouring the subClassOf
  /// closure; every literal is an instance of `literal_class()` only.
  bool IsInstanceOf(ItemId item, ClassId cls) const;

  /// All items of a class, subClassOf closure included (for the literal
  /// class: all literals). Precomputed at freeze time; O(1) span access.
  std::span<const ItemId> InstancesOf(ClassId cls) const;

  /// Items whose label equals `label` exactly (labels are normalized at
  /// build time with NormalizeWhitespace). Binary search over the frozen
  /// label-sorted group index: O(log #labels) string compares.
  std::span<const ItemId> ItemsWithLabel(std::string_view label) const;

  // ---- Edge queries --------------------------------------------------------

  /// All out-edges of `source`, sorted by (relation, target).
  std::span<const KbEdge> OutEdges(ItemId source) const;
  /// All in-edges of `target`, sorted by (relation, source).
  std::span<const KbEdge> InEdges(ItemId target) const;

  /// Objects o with (source, relation, o) in the KB.
  std::span<const KbEdge> Objects(ItemId source, RelationId relation) const;
  /// Subjects s with (s, relation, target) in the KB.
  std::span<const KbEdge> Subjects(RelationId relation, ItemId target) const;

  /// True iff the triple (source, relation, target) exists. O(log degree).
  bool HasEdge(ItemId source, RelationId relation, ItemId target) const;

  /// Ancestor closure of a class (including itself), sorted.
  std::span<const ClassId> AncestorsOf(ClassId cls) const;

  /// True iff `sub` == `super` or `sub` is a (transitive) subclass.
  bool IsSubclassOf(ClassId sub, ClassId super) const;

  /// Human-readable one-line summary, e.g. for logs and Table II output.
  std::string DebugSummary() const;

 private:
  friend class KbBuilder;
  friend class KbSnapshotCodec;  // kb/snapshot.h: flat binary (de)serialization

  struct ClassInfo {
    std::string name;
    std::vector<ClassId> parents;      // direct superclasses
    std::vector<ClassId> ancestors;    // transitive closure incl. self, sorted
    std::vector<ItemId> instances;     // closure instances, sorted (frozen)
  };

  static std::span<const KbEdge> EdgeRange(std::span<const KbEdge> edges,
                                           RelationId relation);

  /// Label of the g-th label-index group (all members share it).
  std::string_view GroupLabel(size_t group) const {
    return Label(label_group_pool_[label_group_offsets_[group]]);
  }

  ClassId literal_class_;
  std::vector<ClassInfo> classes_;
  std::unordered_map<std::string, ClassId> class_by_name_;

  std::vector<std::string> relation_names_;
  std::unordered_map<std::string, RelationId> relation_by_name_;

  // Frozen per-item storage: one offsets array + one pool per aspect, all
  // parallel to item id. offsets arrays hold num_items + 1 entries.
  std::string label_blob_;                    // labels concatenated in id order
  std::vector<uint64_t> label_offsets_;
  std::vector<uint8_t> literal_flags_;
  std::vector<uint64_t> item_class_offsets_;  // direct classes
  std::vector<ClassId> item_class_pool_;
  std::vector<uint64_t> out_edge_offsets_;    // sorted by (relation, target)
  std::vector<KbEdge> out_edge_pool_;
  std::vector<uint64_t> in_edge_offsets_;     // sorted by (relation, source)
  std::vector<KbEdge> in_edge_pool_;
  // Label index: groups of item ids sharing a label, groups ordered by label
  // (strictly increasing), members ascending. num_groups + 1 offsets.
  std::vector<uint64_t> label_group_offsets_;
  std::vector<ItemId> label_group_pool_;
  size_t num_entities_ = 0;
  size_t num_edges_ = 0;
};

/// Mutating construction API for KnowledgeBase.
///
/// Typical use:
///   KbBuilder b;
///   ClassId city = b.AddClass("city");
///   ItemId haifa = b.AddEntity("Haifa", {city});
///   ItemId technion = b.AddEntity("Israel Institute of Technology", {org});
///   b.AddEdge(technion, b.AddRelation("locatedIn"), haifa);
///   KnowledgeBase kb = std::move(b).Freeze();
class KbBuilder {
 public:
  KbBuilder();

  /// Declares (or finds) a class. `parents` may name classes not yet added;
  /// they are created on the fly.
  ClassId AddClass(std::string_view name,
                   const std::vector<std::string>& parents = {});

  /// Adds a subClassOf edge between existing or new classes.
  void AddSubclass(std::string_view sub, std::string_view super);

  /// Declares (or finds) an edge label.
  RelationId AddRelation(std::string_view name);

  /// Creates a new entity vertex. Labels are normalized; entities with equal
  /// labels remain distinct vertices (homonyms are real in KBs).
  ItemId AddEntity(std::string_view label, const std::vector<ClassId>& classes);

  /// Adds `cls` to an existing entity.
  void AddClassToEntity(ItemId entity, ClassId cls);

  /// Returns the literal vertex for `value`, creating it on first use
  /// (literals are deduplicated by value).
  ItemId AddLiteral(std::string_view value);

  /// Adds the triple (subject, relation, object). Duplicate triples are
  /// deduplicated at freeze time.
  void AddEdge(ItemId subject, RelationId relation, ItemId object);

  /// First entity with this normalized label, or Invalid().
  ItemId FindEntity(std::string_view label) const;

  size_t num_items() const { return kb_.literal_flags_.size(); }

  /// Validates the taxonomy (rejects subClassOf cycles), sorts adjacency,
  /// computes ancestor closures and per-class instance lists, and flattens
  /// the per-item building vectors into the frozen pools. The builder is
  /// consumed.
  Status FreezeInto(KnowledgeBase* out) &&;

  /// Convenience wrapper that aborts on invalid input; for generators and
  /// tests whose input is correct by construction.
  KnowledgeBase Freeze() &&;

 private:
  KnowledgeBase kb_;
  // Mutable per-item state during construction; flattened into the frozen
  // pools by FreezeInto. Labels go straight into kb_.label_blob_ (they never
  // change once added), the label→items map becomes the sorted group index.
  std::vector<std::vector<ClassId>> item_classes_;
  std::vector<std::vector<KbEdge>> out_edges_;
  std::vector<std::vector<KbEdge>> in_edges_;
  std::unordered_map<std::string, std::vector<ItemId>> items_by_label_;
  std::unordered_map<std::string, ItemId> literal_by_value_;
};

}  // namespace detective

#endif  // DETECTIVE_KB_KNOWLEDGE_BASE_H_
