#include "kb/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace detective {
namespace {

// Header: magic[8] | version u32 | header_bytes u32 | payload_bytes u64 |
// checksum u64 | reserved u64[2].
constexpr size_t kHeaderBytes = 48;

uint64_t LoadLe64(const unsigned char* p) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

uint32_t LoadLe32(const unsigned char* p) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

/// FNV-1a folded over 8-byte words (plus a length-mixed tail) instead of
/// single bytes: one multiply per 8 bytes keeps checksum cost well under the
/// mmap + reconstruction cost even for a ~100 MB 1M-tuple snapshot.
uint64_t SnapshotChecksum(std::string_view bytes) {
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  uint64_t hash = 0xcbf29ce484222325ULL;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  size_t n = bytes.size();
  while (n >= 8) {
    hash = (hash ^ LoadLe64(p)) * kPrime;
    p += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  for (size_t i = 0; i < n; ++i) tail |= static_cast<uint64_t>(p[i]) << (8 * i);
  hash = (hash ^ tail) * kPrime;
  hash = (hash ^ bytes.size()) * kPrime;
  return hash;
}

/// Append-only little-endian encoder for the payload sections.
class PayloadWriter {
 public:
  void U32(uint32_t v) {
    for (size_t i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void U64(uint64_t v) {
    for (size_t i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void Bytes(std::string_view bytes) { out_.append(bytes); }
  void Align8() { out_.append((8 - out_.size() % 8) % 8, '\0'); }

  std::string Take() && { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian decoder; every read either succeeds in full
/// or reports which section came up short.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes)
      : p_(reinterpret_cast<const unsigned char*>(bytes.data())),
        end_(p_ + bytes.size()) {}

  Status U64(uint64_t* v, std::string_view what) {
    if (static_cast<size_t>(end_ - p_) < 8) return Short(what);
    *v = LoadLe64(p_);
    p_ += 8;
    return Status::OK();
  }

  Status U64Array(size_t count, std::vector<uint64_t>* out, std::string_view what) {
    if (count > static_cast<size_t>(end_ - p_) / 8) return Short(what);
    out->resize(count);
    for (size_t i = 0; i < count; ++i) (*out)[i] = LoadLe64(p_ + i * 8);
    p_ += count * 8;
    return Status::OK();
  }

  /// Reads `count` u32 ids into a vector of the wrapper type, rejecting any
  /// value outside [0, limit).
  template <typename IdT>
  Status IdArray(size_t count, uint32_t limit, std::vector<IdT>* out,
                 std::string_view what) {
    if (count > static_cast<size_t>(end_ - p_) / 4) return Short(what);
    out->resize(count);
    for (size_t i = 0; i < count; ++i) {
      const uint32_t v = LoadLe32(p_ + i * 4);
      if (v >= limit) {
        return Status::ParseError("KB snapshot ", what, " entry ", i,
                                  " references id ", v,
                                  " outside the valid range [0, ", limit, ")");
      }
      (*out)[i] = IdT(v);
    }
    p_ += count * 4;
    return Status::OK();
  }

  /// Reads `count` (relation, target) u32 pairs, each half range-checked.
  Status EdgeArray(size_t count, uint32_t relation_limit, uint32_t item_limit,
                   std::vector<KbEdge>* out, std::string_view what) {
    if (count > static_cast<size_t>(end_ - p_) / 8) return Short(what);
    out->resize(count);
    for (size_t i = 0; i < count; ++i) {
      const uint32_t relation = LoadLe32(p_ + i * 8);
      const uint32_t target = LoadLe32(p_ + i * 8 + 4);
      if (relation >= relation_limit) {
        return Status::ParseError("KB snapshot ", what, " edge ", i,
                                  " references relation id ", relation,
                                  " outside the valid range [0, ",
                                  relation_limit, ")");
      }
      if (target >= item_limit) {
        return Status::ParseError("KB snapshot ", what, " edge ", i,
                                  " references item id ", target,
                                  " outside the valid range [0, ", item_limit,
                                  ")");
      }
      (*out)[i] = KbEdge{RelationId(relation), ItemId(target)};
    }
    p_ += count * 8;
    return Status::OK();
  }

  Status Bytes(size_t count, std::string_view* out, std::string_view what) {
    if (static_cast<size_t>(end_ - p_) < count) return Short(what);
    *out = std::string_view(reinterpret_cast<const char*>(p_), count);
    p_ += count;
    return Status::OK();
  }

  Status Align8(std::string_view what) {
    size_t used = static_cast<size_t>(p_ - begin_of_payload_);
    size_t pad = (8 - used % 8) % 8;
    if (static_cast<size_t>(end_ - p_) < pad) return Short(what);
    p_ += pad;
    return Status::OK();
  }

  void MarkPayloadStart() { begin_of_payload_ = p_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  static Status Short(std::string_view what) {
    return Status::ParseError("KB snapshot truncated inside the ", what,
                              " section");
  }

  const unsigned char* p_;
  const unsigned char* end_;
  const unsigned char* begin_of_payload_ = nullptr;
};

/// Validates one offsets array: starts at 0 and nondecreasing. The caller
/// checks the final total against whatever pool it addresses.
Status ValidateOffsets(const std::vector<uint64_t>& offsets,
                       std::string_view what) {
  if (offsets.empty() || offsets[0] != 0) {
    return Status::ParseError("KB snapshot ", what, " offsets do not start at 0");
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::ParseError("KB snapshot ", what,
                                " offsets are not nondecreasing at entry ", i);
    }
  }
  return Status::OK();
}

/// Writes one ragged array (vector-of-vectors flattened): an offsets array of
/// `outer+1` u64s followed by the u32 pool.
template <typename Outer, typename GetId>
void WriteRagged(PayloadWriter& w, const Outer& rows, GetId get_id) {
  uint64_t offset = 0;
  w.U64(offset);
  for (const auto& row : rows) {
    offset += row.size();
    w.U64(offset);
  }
  for (const auto& row : rows) {
    for (const auto& element : row) w.U32(get_id(element));
  }
  w.Align8();
}

/// Reads one ragged section written by WriteRagged into id-typed storage.
template <typename IdT>
Status ReadRagged(PayloadReader& r, size_t outer, uint32_t id_limit,
                  std::string_view what, std::vector<uint64_t>* offsets,
                  std::vector<IdT>* pool) {
  RETURN_NOT_OK(r.U64Array(outer + 1, offsets, what));
  RETURN_NOT_OK(ValidateOffsets(*offsets, what));
  uint64_t total = offsets->back();
  if (total > r.remaining() / 4) {
    return Status::ParseError("KB snapshot ", what, " pool of ", total,
                              " entries exceeds the remaining payload");
  }
  RETURN_NOT_OK(r.IdArray(static_cast<size_t>(total), id_limit, pool, what));
  return r.Align8(what);
}

}  // namespace

/// Friend of KnowledgeBase: reads and writes its frozen internals directly.
/// The frozen representation is already flat (offset arrays + pools — see
/// knowledge_base.h), so serialization writes the pools verbatim and the
/// loader reconstructs a KB with one bulk array read per section instead of
/// per-item work.
class KbSnapshotCodec {
 public:
  static std::string Serialize(const KnowledgeBase& kb) {
    PayloadWriter w;
    const size_t num_classes = kb.classes_.size();
    const size_t num_relations = kb.relation_names_.size();
    const size_t num_items = kb.literal_flags_.size();
    const size_t num_groups =
        kb.label_group_offsets_.empty() ? 0 : kb.label_group_offsets_.size() - 1;

    uint64_t vocab_bytes = 0;
    for (const auto& info : kb.classes_) vocab_bytes += info.name.size();
    for (const auto& name : kb.relation_names_) vocab_bytes += name.size();

    // Preamble.
    w.U64(num_items);
    w.U64(kb.num_entities_);
    w.U64(kb.num_edges_);
    w.U64(num_classes);
    w.U64(num_relations);
    w.U64(kb.literal_class_.value());
    w.U64(num_groups);
    w.U64(vocab_bytes);
    w.U64(kb.label_blob_.size());

    // Vocabulary strings: class names then relation names, one offsets array
    // plus the concatenated blob.
    uint64_t offset = 0;
    w.U64(offset);
    for (const auto& info : kb.classes_) w.U64(offset += info.name.size());
    for (const auto& name : kb.relation_names_) w.U64(offset += name.size());
    for (const auto& info : kb.classes_) w.Bytes(info.name);
    for (const auto& name : kb.relation_names_) w.Bytes(name);
    w.Align8();

    // Item labels: the frozen offsets array + blob, verbatim. A default
    // (item-less) KB has no offsets array yet — write the canonical [0].
    WriteOffsets(w, kb.label_offsets_);
    w.Bytes(kb.label_blob_);
    w.Align8();

    // Taxonomy: parents, ancestor closures, instance lists (small outer
    // count; these stay vector-of-vectors in memory).
    auto class_id = [](ClassId id) { return id.value(); };
    auto item_id = [](ItemId id) { return id.value(); };
    {
      std::vector<std::vector<ClassId>> parents, ancestors;
      std::vector<std::vector<ItemId>> instances;
      for (const auto& info : kb.classes_) {
        parents.push_back(info.parents);
        ancestors.push_back(info.ancestors);
        instances.push_back(info.instances);
      }
      WriteRagged(w, parents, class_id);
      WriteRagged(w, ancestors, class_id);
      WriteRagged(w, instances, item_id);
    }

    // Literal flags.
    w.Bytes(std::string_view(
        reinterpret_cast<const char*>(kb.literal_flags_.data()), num_items));
    w.Align8();

    // Per-item pools, verbatim.
    WriteOffsets(w, kb.item_class_offsets_);
    for (ClassId id : kb.item_class_pool_) w.U32(id.value());
    w.Align8();
    WriteEdgePool(w, kb.out_edge_offsets_, kb.out_edge_pool_);
    WriteEdgePool(w, kb.in_edge_offsets_, kb.in_edge_pool_);

    // Label index groups, ordered by label (the frozen order).
    WriteOffsets(w, kb.label_group_offsets_);
    for (ItemId id : kb.label_group_pool_) w.U32(id.value());
    w.Align8();

    std::string payload = std::move(w).Take();

    PayloadWriter header;
    header.Bytes(kKbSnapshotMagic);
    header.U32(kKbSnapshotVersion);
    header.U32(static_cast<uint32_t>(kHeaderBytes));
    header.U64(payload.size());
    header.U64(SnapshotChecksum(payload));
    header.U64(0);
    header.U64(0);
    std::string bytes = std::move(header).Take();
    bytes += payload;
    return bytes;
  }

  static Status Parse(std::string_view payload, KnowledgeBase* kb) {
    PayloadReader r(payload);
    r.MarkPayloadStart();

    uint64_t num_items = 0, num_entities = 0, num_edges = 0, num_classes = 0;
    uint64_t num_relations = 0, literal_class = 0, num_groups = 0;
    uint64_t vocab_bytes = 0, label_bytes = 0;
    RETURN_NOT_OK(r.U64(&num_items, "preamble"));
    RETURN_NOT_OK(r.U64(&num_entities, "preamble"));
    RETURN_NOT_OK(r.U64(&num_edges, "preamble"));
    RETURN_NOT_OK(r.U64(&num_classes, "preamble"));
    RETURN_NOT_OK(r.U64(&num_relations, "preamble"));
    RETURN_NOT_OK(r.U64(&literal_class, "preamble"));
    RETURN_NOT_OK(r.U64(&num_groups, "preamble"));
    RETURN_NOT_OK(r.U64(&vocab_bytes, "preamble"));
    RETURN_NOT_OK(r.U64(&label_bytes, "preamble"));

    // Ids are 32-bit (Invalid reserved); counts beyond the payload are lies.
    constexpr uint64_t kMaxIds = 0xfffffffeULL;
    if (num_items > kMaxIds || num_classes > kMaxIds || num_relations > kMaxIds) {
      return Status::ParseError(
          "KB snapshot preamble counts exceed the 32-bit id space (items=",
          num_items, ", classes=", num_classes, ", relations=", num_relations, ")");
    }
    const size_t num_strings =
        static_cast<size_t>(num_classes + num_relations);
    if (num_strings > r.remaining() / 8 || num_items > r.remaining() / 8 ||
        num_groups > r.remaining() / 8 || vocab_bytes > r.remaining() ||
        label_bytes > r.remaining()) {
      return Status::ParseError(
          "KB snapshot preamble counts exceed the payload size (vocab strings=",
          num_strings, ", items=", num_items, ", label groups=", num_groups,
          ", blob bytes=", vocab_bytes + label_bytes, ", payload remaining=",
          r.remaining(), ")");
    }
    if (num_entities > num_items) {
      return Status::ParseError("KB snapshot claims ", num_entities,
                                " entities among only ", num_items, " items");
    }
    if (num_classes == 0 || literal_class >= num_classes) {
      return Status::ParseError("KB snapshot literal class id ", literal_class,
                                " is outside [0, ", num_classes, ")");
    }

    // Vocabulary strings.
    std::vector<uint64_t> vocab_offsets;
    std::string_view vocab_blob;
    RETURN_NOT_OK(r.U64Array(num_strings + 1, &vocab_offsets,
                             "vocabulary string table"));
    RETURN_NOT_OK(ValidateOffsets(vocab_offsets, "vocabulary string table"));
    if (vocab_offsets.back() != vocab_bytes) {
      return Status::ParseError(
          "KB snapshot vocabulary string table ends at offset ",
          vocab_offsets.back(), " but the blob holds ", vocab_bytes, " bytes");
    }
    RETURN_NOT_OK(r.Bytes(static_cast<size_t>(vocab_bytes), &vocab_blob,
                          "vocabulary blob"));
    RETURN_NOT_OK(r.Align8("vocabulary blob"));
    auto vocab_at = [&](size_t index) {
      return vocab_blob.substr(
          static_cast<size_t>(vocab_offsets[index]),
          static_cast<size_t>(vocab_offsets[index + 1] - vocab_offsets[index]));
    };

    // Item labels: offsets + blob straight into the frozen fields.
    std::string_view label_blob;
    RETURN_NOT_OK(r.U64Array(static_cast<size_t>(num_items) + 1,
                             &kb->label_offsets_, "item label table"));
    RETURN_NOT_OK(ValidateOffsets(kb->label_offsets_, "item label table"));
    if (kb->label_offsets_.back() != label_bytes) {
      return Status::ParseError("KB snapshot item label table ends at offset ",
                                kb->label_offsets_.back(),
                                " but the blob holds ", label_bytes, " bytes");
    }
    RETURN_NOT_OK(r.Bytes(static_cast<size_t>(label_bytes), &label_blob,
                          "item label blob"));
    RETURN_NOT_OK(r.Align8("item label blob"));
    kb->label_blob_.assign(label_blob.data(), label_blob.size());

    // Taxonomy.
    std::vector<uint64_t> parent_offsets, ancestor_offsets, instance_offsets;
    std::vector<ClassId> parent_pool, ancestor_pool;
    std::vector<ItemId> instance_pool;
    RETURN_NOT_OK(ReadRagged(r, static_cast<size_t>(num_classes),
                             static_cast<uint32_t>(num_classes), "class parents",
                             &parent_offsets, &parent_pool));
    RETURN_NOT_OK(ReadRagged(r, static_cast<size_t>(num_classes),
                             static_cast<uint32_t>(num_classes),
                             "class ancestors", &ancestor_offsets, &ancestor_pool));
    RETURN_NOT_OK(ReadRagged(r, static_cast<size_t>(num_classes),
                             static_cast<uint32_t>(num_items),
                             "class instances", &instance_offsets, &instance_pool));

    // Literal flags.
    std::string_view flags;
    RETURN_NOT_OK(r.Bytes(static_cast<size_t>(num_items), &flags, "item flags"));
    RETURN_NOT_OK(r.Align8("item flags"));
    kb->literal_flags_.assign(flags.begin(), flags.end());

    // Per-item pools: one offsets array + one bulk pool read each.
    RETURN_NOT_OK(ReadRagged(r, static_cast<size_t>(num_items),
                             static_cast<uint32_t>(num_classes), "item classes",
                             &kb->item_class_offsets_, &kb->item_class_pool_));
    RETURN_NOT_OK(ReadEdges(r, static_cast<size_t>(num_items),
                            static_cast<uint32_t>(num_relations),
                            static_cast<uint32_t>(num_items), "out-edges",
                            &kb->out_edge_offsets_, &kb->out_edge_pool_));
    RETURN_NOT_OK(ReadEdges(r, static_cast<size_t>(num_items),
                            static_cast<uint32_t>(num_relations),
                            static_cast<uint32_t>(num_items), "in-edges",
                            &kb->in_edge_offsets_, &kb->in_edge_pool_));
    if (kb->out_edge_offsets_.back() != num_edges) {
      return Status::ParseError("KB snapshot claims ", num_edges,
                                " edges but the out-edge pool holds ",
                                kb->out_edge_offsets_.back());
    }

    // Label index: groups must be non-empty and strictly ordered by label
    // (the loader's lookup is a binary search over this order).
    RETURN_NOT_OK(ReadRagged(r, static_cast<size_t>(num_groups),
                             static_cast<uint32_t>(num_items), "label index",
                             &kb->label_group_offsets_, &kb->label_group_pool_));
    auto group_label = [&](size_t g) {
      const ItemId first = kb->label_group_pool_[static_cast<size_t>(
          kb->label_group_offsets_[g])];
      return std::string_view(kb->label_blob_)
          .substr(static_cast<size_t>(kb->label_offsets_[first.value()]),
                  static_cast<size_t>(kb->label_offsets_[first.value() + 1] -
                                      kb->label_offsets_[first.value()]));
    };
    for (size_t g = 0; g < num_groups; ++g) {
      if (kb->label_group_offsets_[g] == kb->label_group_offsets_[g + 1]) {
        return Status::ParseError("KB snapshot label index group ", g,
                                  " is empty");
      }
      if (g > 0 && group_label(g - 1) >= group_label(g)) {
        return Status::ParseError(
            "KB snapshot label index groups are not strictly ordered by label "
            "at group ", g);
      }
    }

    // Vocabulary reconstruction (small) + scalars.
    kb->literal_class_ = ClassId(static_cast<uint32_t>(literal_class));
    kb->num_entities_ = static_cast<size_t>(num_entities);
    kb->num_edges_ = static_cast<size_t>(num_edges);

    kb->classes_.resize(static_cast<size_t>(num_classes));
    kb->class_by_name_.reserve(static_cast<size_t>(num_classes));
    for (size_t c = 0; c < num_classes; ++c) {
      KnowledgeBase::ClassInfo& info = kb->classes_[c];
      info.name = std::string(vocab_at(c));
      info.parents.assign(
          parent_pool.begin() + static_cast<size_t>(parent_offsets[c]),
          parent_pool.begin() + static_cast<size_t>(parent_offsets[c + 1]));
      info.ancestors.assign(
          ancestor_pool.begin() + static_cast<size_t>(ancestor_offsets[c]),
          ancestor_pool.begin() + static_cast<size_t>(ancestor_offsets[c + 1]));
      info.instances.assign(
          instance_pool.begin() + static_cast<size_t>(instance_offsets[c]),
          instance_pool.begin() + static_cast<size_t>(instance_offsets[c + 1]));
      kb->class_by_name_.emplace(info.name, ClassId(static_cast<uint32_t>(c)));
    }

    kb->relation_names_.resize(static_cast<size_t>(num_relations));
    kb->relation_by_name_.reserve(static_cast<size_t>(num_relations));
    for (size_t rel = 0; rel < num_relations; ++rel) {
      kb->relation_names_[rel] = std::string(vocab_at(num_classes + rel));
      kb->relation_by_name_.emplace(kb->relation_names_[rel],
                                    RelationId(static_cast<uint32_t>(rel)));
    }
    return Status::OK();
  }

  static bool Equals(const KnowledgeBase& a, const KnowledgeBase& b,
                     std::string* diff) {
    auto fail = [&](std::string message) {
      if (diff != nullptr) *diff = std::move(message);
      return false;
    };
    if (a.literal_class_ != b.literal_class_) return fail("literal class id differs");
    if (a.num_entities_ != b.num_entities_) return fail("entity count differs");
    if (a.num_edges_ != b.num_edges_) return fail("edge count differs");
    if (a.classes_.size() != b.classes_.size()) return fail("class count differs");
    for (size_t c = 0; c < a.classes_.size(); ++c) {
      const auto& ca = a.classes_[c];
      const auto& cb = b.classes_[c];
      if (ca.name != cb.name) return fail("class " + std::to_string(c) + " name differs");
      if (ca.parents != cb.parents) return fail("class '" + ca.name + "' parents differ");
      if (ca.ancestors != cb.ancestors) return fail("class '" + ca.name + "' ancestors differ");
      if (ca.instances != cb.instances) return fail("class '" + ca.name + "' instances differ");
    }
    if (a.relation_names_ != b.relation_names_) return fail("relation names differ");
    if (a.label_blob_ != b.label_blob_ || a.label_offsets_ != b.label_offsets_) {
      return fail("item labels differ");
    }
    if (a.literal_flags_ != b.literal_flags_) return fail("literal flags differ");
    if (a.item_class_offsets_ != b.item_class_offsets_ ||
        a.item_class_pool_ != b.item_class_pool_) {
      return fail("item direct classes differ");
    }
    if (a.out_edge_offsets_ != b.out_edge_offsets_ ||
        a.out_edge_pool_ != b.out_edge_pool_) {
      return fail("out-edge adjacency differs");
    }
    if (a.in_edge_offsets_ != b.in_edge_offsets_ ||
        a.in_edge_pool_ != b.in_edge_pool_) {
      return fail("in-edge adjacency differs");
    }
    if (a.label_group_offsets_ != b.label_group_offsets_ ||
        a.label_group_pool_ != b.label_group_pool_) {
      return fail("label index differs");
    }
    if (a.class_by_name_ != b.class_by_name_) return fail("class name index differs");
    if (a.relation_by_name_ != b.relation_by_name_) return fail("relation name index differs");
    return true;
  }

 private:
  /// A frozen offsets array, or the canonical [0] when the KB never froze
  /// one (default-constructed, zero items).
  static void WriteOffsets(PayloadWriter& w, const std::vector<uint64_t>& offsets) {
    if (offsets.empty()) {
      w.U64(0);
      return;
    }
    for (uint64_t o : offsets) w.U64(o);
  }

  static void WriteEdgePool(PayloadWriter& w,
                            const std::vector<uint64_t>& offsets,
                            const std::vector<KbEdge>& pool) {
    WriteOffsets(w, offsets);
    for (const KbEdge& edge : pool) {
      w.U32(edge.relation.value());
      w.U32(edge.target.value());
    }
    w.Align8();
  }

  /// Reads one adjacency section: offsets + (relation, target) u32 pairs.
  static Status ReadEdges(PayloadReader& r, size_t outer, uint32_t relation_limit,
                          uint32_t item_limit, std::string_view what,
                          std::vector<uint64_t>* offsets,
                          std::vector<KbEdge>* pool) {
    RETURN_NOT_OK(r.U64Array(outer + 1, offsets, what));
    RETURN_NOT_OK(ValidateOffsets(*offsets, what));
    uint64_t total = offsets->back();
    if (total > r.remaining() / 8) {
      return Status::ParseError("KB snapshot ", what, " pool of ", total,
                                " edges exceeds the remaining payload");
    }
    RETURN_NOT_OK(r.EdgeArray(static_cast<size_t>(total), relation_limit,
                              item_limit, pool, what));
    return r.Align8(what);
  }
};

std::string SerializeKbSnapshot(const KnowledgeBase& kb) {
  DETECTIVE_SCOPED_TIMER("kb.snapshot.serialize");
  return KbSnapshotCodec::Serialize(kb);
}

Status WriteKbSnapshot(const KnowledgeBase& kb, const std::string& path) {
  DETECTIVE_FAULT_POINT("kb.snapshot.write");
  std::string bytes = SerializeKbSnapshot(kb);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open KB snapshot '", path, "' for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::IOError("failed writing ", bytes.size(),
                           " snapshot bytes to '", path, "'");
  }
  return Status::OK();
}

bool HasKbSnapshotMagic(std::string_view bytes) {
  return bytes.size() >= kKbSnapshotMagic.size() &&
         bytes.substr(0, kKbSnapshotMagic.size()) == kKbSnapshotMagic;
}

Result<bool> FileHasKbSnapshotMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '", path, "' to sniff its format");
  char head[8] = {};
  in.read(head, sizeof head);
  return HasKbSnapshotMagic(
      std::string_view(head, static_cast<size_t>(in.gcount())));
}

Result<KnowledgeBase> ParseKbSnapshot(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes) {
    return Status::ParseError("KB snapshot of ", bytes.size(),
                              " bytes is too short to hold the ", kHeaderBytes,
                              "-byte header");
  }
  if (!HasKbSnapshotMagic(bytes)) {
    return Status::ParseError(
        "bad KB snapshot magic: expected \"DTCTVKB1\", found ",
        "a different leading byte sequence (not a snapshot file?)");
  }
  const auto* header = reinterpret_cast<const unsigned char*>(bytes.data());
  const uint32_t version = LoadLe32(header + 8);
  if (version != kKbSnapshotVersion) {
    return Status::ParseError("unsupported KB snapshot version ", version,
                              " (this reader understands version ",
                              kKbSnapshotVersion,
                              "; rebuild the snapshot with detective_kb_build)");
  }
  const uint32_t header_bytes = LoadLe32(header + 12);
  if (header_bytes != kHeaderBytes) {
    return Status::ParseError("KB snapshot declares a ", header_bytes,
                              "-byte header; this version uses ", kHeaderBytes,
                              " bytes");
  }
  const uint64_t payload_bytes = LoadLe64(header + 16);
  if (payload_bytes != bytes.size() - kHeaderBytes) {
    return Status::ParseError("KB snapshot declares ", payload_bytes,
                              " payload bytes but the file holds ",
                              bytes.size() - kHeaderBytes,
                              " after the header (truncated or oversized?)");
  }
  const uint64_t expected_checksum = LoadLe64(header + 24);
  // Reserved header words must be zero in v1: a writer that sets them speaks
  // a newer dialect this reader cannot judge, and a flipped bit there is
  // corruption the payload checksum cannot see.
  if (LoadLe64(header + 32) != 0 || LoadLe64(header + 40) != 0) {
    return Status::ParseError(
        "KB snapshot header has nonzero reserved bytes (corrupted file, or "
        "written by a newer format revision)");
  }
  std::string_view payload = bytes.substr(kHeaderBytes);
  const uint64_t actual_checksum = SnapshotChecksum(payload);
  if (expected_checksum != actual_checksum) {
    return Status::ParseError("KB snapshot checksum mismatch: header says ",
                              expected_checksum, ", payload hashes to ",
                              actual_checksum, " (corrupted file)");
  }
  KnowledgeBase kb;
  RETURN_NOT_OK(KbSnapshotCodec::Parse(payload, &kb));
  return kb;
}

Result<KnowledgeBase> LoadKbSnapshot(const std::string& path) {
  DETECTIVE_SCOPED_TIMER("kb.snapshot.load");
  DETECTIVE_TRACE_SPAN("kb.snapshot.load");
  return fault::RetryTransient([&]() -> Result<KnowledgeBase> {
    DETECTIVE_FAULT_POINT("kb.load");
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError("cannot open KB snapshot '", path,
                             "': ", std::strerror(errno));
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("cannot stat KB snapshot '", path,
                             "': ", std::strerror(err));
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return Status::ParseError("KB snapshot '", path, "' is empty");
    }
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      // Fall back to a plain read (e.g. filesystems without mmap support).
      std::string buffer(size, '\0');
      ssize_t got = ::pread(fd, buffer.data(), size, 0);
      ::close(fd);
      if (got < 0 || static_cast<size_t>(got) != size) {
        return Status::IOError("cannot read KB snapshot '", path, "'");
      }
      return ParseKbSnapshot(buffer);
    }
    ::close(fd);
    Result<KnowledgeBase> parsed =
        ParseKbSnapshot(std::string_view(static_cast<const char*>(map), size));
    ::munmap(map, size);
    return parsed;
  });
}

bool KbEquals(const KnowledgeBase& a, const KnowledgeBase& b, std::string* diff) {
  return KbSnapshotCodec::Equals(a, b, diff);
}

}  // namespace detective
