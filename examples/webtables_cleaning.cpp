// Cleaning a corpus of small heterogeneous Web tables (paper §V dataset
// (1)): 37 tables over different domains share one general-purpose KB; each
// table carries its own detective rules. Shows per-table and corpus-level
// results, plus the conservative behaviour on tables that are too narrow to
// support a repair.

#include <cstdio>

#include "core/repair.h"
#include "datagen/webtables_gen.h"
#include "eval/metrics.h"

int main() {
  using namespace detective;

  WebTablesOptions options;
  WebTablesCorpus corpus = GenerateWebTables(options);
  KnowledgeBase kb = corpus.world.ToKb(YagoProfile(), corpus.key_entities);
  std::printf("Corpus: %zu tables, %zu rules total; shared KB: %s\n\n",
              corpus.tables.size(), corpus.total_rules(),
              kb.DebugSummary().c_str());

  std::vector<RepairQuality> qualities;
  std::printf("%-16s %7s %6s %8s %8s %8s\n", "table", "tuples", "rules", "P", "R",
              "#-POS");
  for (const WebTable& table : corpus.tables) {
    FastRepairer repairer(kb, table.clean.schema(), table.rules);
    repairer.Init().Abort(table.name.c_str());
    Relation repaired = table.dirty;
    repairer.RepairRelation(&repaired);

    std::vector<char> eligible = EligibleRows(table.clean, kb, table.key_column);
    RepairQuality quality =
        EvaluateRepair(table.clean, table.dirty, repaired, eligible);
    qualities.push_back(quality);
    std::printf("%-16s %7zu %6zu %8.2f %8.2f %8zu\n", table.name.c_str(),
                table.dirty.num_tuples(), table.rules.size(), quality.precision(),
                quality.recall(), quality.pos_marks);
  }

  RepairQuality total = MergeQualities(qualities);
  std::printf("\nCorpus total: %s\n", total.ToString().c_str());
  std::printf(
      "\nNote the paper's WebTables story: precision is 1.0 because DRs only\n"
      "repair with sufficient evidence, while recall is modest — errors on a\n"
      "table's key column leave nothing to collect evidence from, so the\n"
      "rules conservatively leave those tuples alone.\n");
  return 0;
}
