// End-to-end cleaning of the Nobel dataset (paper §V dataset (2)):
// generate the world, project it into a Yago-profile KB, dirty the relation
// (10% errors, half typos half semantic), verify rule consistency on a
// sample, repair with the fast algorithm, and evaluate against the ground
// truth — the full production workflow of the library.

#include <cstdio>

#include "core/consistency.h"
#include "core/repair.h"
#include "core/rule_io.h"
#include "datagen/nobel_gen.h"
#include "eval/experiment.h"

int main() {
  using namespace detective;

  // 1. Generate the dataset and its ground-truth world.
  NobelOptions options;
  options.num_laureates = 1069;  // as in the paper
  Dataset dataset = GenerateNobel(options);
  std::printf("Generated %zu laureates; %zu curated detective rules:\n\n",
              dataset.clean.num_tuples(), dataset.rules.size());
  std::printf("%s\n", FormatRules(dataset.rules).c_str());

  // 2. Project the world into a KB (Yago profile) and dirty the relation.
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  std::printf("KB: %s\n\n", kb.DebugSummary().c_str());

  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.10;
  spec.typo_fraction = 0.5;
  std::vector<ErrorRecord> errors = InjectErrors(&dirty, spec, dataset.alternatives);
  std::printf("Injected %zu errors (10%% of cells; 50/50 typos vs semantic).\n",
              errors.size());

  // 3. Consistency check (paper §III-C) before trusting the rule set.
  ConsistencyOptions copts;
  copts.max_tuples = 64;
  auto report = CheckConsistency(kb, dataset.rules, dirty, copts);
  report.status().Abort("consistency");
  std::printf("Consistency: %s\n\n", report->ToString().c_str());
  if (!report->consistent) return 1;

  // 4. Repair with the fast algorithm.
  FastRepairer repairer(kb, dirty.schema(), dataset.rules);
  repairer.Init().Abort("init");
  Relation repaired = dirty;
  double start = NowSeconds();
  repairer.RepairRelation(&repaired);
  double elapsed = NowSeconds() - start;

  // 5. Evaluate against the ground truth (paper metrics).
  std::vector<char> eligible = EligibleRows(dataset.clean, kb, dataset.key_column);
  RepairQuality quality = EvaluateRepair(dataset.clean, dirty, repaired, eligible);
  std::printf("Repaired in %.3fs: %s\n\n", elapsed, quality.ToString().c_str());

  // 6. Show a few concrete repairs.
  std::printf("Sample repairs:\n");
  size_t shown = 0;
  for (size_t row = 0; row < repaired.num_tuples() && shown < 5; ++row) {
    const Tuple& tuple = repaired.tuple(row);
    for (ColumnIndex c = 0; c < tuple.size() && shown < 5; ++c) {
      if (!tuple.WasRepaired(c)) continue;
      std::printf("  row %-5zu %-12s '%s' -> '%s'\n", row,
                  repaired.schema().column_name(c).c_str(),
                  tuple.OriginalValue(c).c_str(), tuple.value(c).c_str());
      ++shown;
    }
  }
  const RepairStats& stats = repairer.stats();
  std::printf(
      "\nEngine stats: %zu rule checks, %zu applications (%zu proofs positive, "
      "%zu cells repaired), %zu cells marked.\n",
      stats.rule_checks, stats.rule_applications, stats.proofs_positive,
      stats.repairs, stats.cells_marked);
  return 0;
}
