// Rule generation by positive/negative examples (paper §III-A):
// the user supplies a handful of correct tuples and a handful of tuples
// whose target column is wrong; the library discovers the schema-level
// matching graphs (S1/S2) and merges them into candidate detective rules
// (S3) for the user to confirm.

#include <cstdio>

#include "core/repair.h"
#include "core/rule_generation.h"
#include "core/rule_io.h"
#include "datagen/nobel_gen.h"
#include "datagen/world.h"

int main() {
  using namespace detective;

  // A ground-truth world and its KB stand in for Yago.
  NobelOptions options;
  options.num_laureates = 200;
  Dataset dataset = GenerateNobel(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  std::printf("KB: %s\n\n", kb.DebugSummary().c_str());

  // Positive examples: a few correct (Name, Institution, City) projections.
  Schema schema({"Name", "Institution", "City"});
  auto project = [&](size_t row, const std::string& city) {
    const Tuple& t = dataset.clean.tuple(row);
    return std::vector<std::string>{t.value(0), t.value(4), city};
  };
  Relation positives{schema};
  Relation negatives{schema};
  for (size_t row = 0; row < 8; ++row) {
    positives.Append(project(row, dataset.clean.tuple(row).value(5))).Abort("p");
  }
  // Negative examples: same rows, City replaced by its semantic alternative
  // (the birth city) — the error class the rule should learn to detect.
  for (size_t row = 8; row < 14; ++row) {
    positives.Append(project(row, dataset.clean.tuple(row).value(5))).Abort("p");
    negatives.Append(project(row, dataset.alternatives[row][5][0])).Abort("n");
  }

  std::printf("S1: discovering the positive schema-level matching graph...\n");
  auto positive_graph = DiscoverMatchingGraph(kb, positives, "City");
  positive_graph.status().Abort("S1");
  std::printf("%s\n", positive_graph->graph.ToString().c_str());

  std::printf("S2: discovering the negative graph from the bad examples...\n");
  auto negative_graph = DiscoverMatchingGraph(kb, negatives, "City");
  negative_graph.status().Abort("S2");
  std::printf("%s\n", negative_graph->graph.ToString().c_str());

  std::printf("S3: merging into candidate detective rules...\n\n");
  auto candidates = GenerateRules(kb, positives, negatives, "City");
  candidates.status().Abort("S3");
  std::printf("%zu candidate rule(s):\n\n%s\n", candidates->size(),
              FormatRules(*candidates).c_str());
  if (candidates->empty()) return 1;

  // "The user picks": here the ground truth plays the expert. Apply the top
  // candidate to a fresh dirty tuple and watch it repair.
  Relation dirty{schema};
  dirty.Append(project(20, dataset.alternatives[20][5][0])).Abort("d");
  std::printf("Dirty tuple:    %s\n", dirty.tuple(0).ToString().c_str());

  FastRepairer repairer(kb, schema, *candidates);
  repairer.Init().Abort("init");
  repairer.RepairRelation(&dirty);
  std::printf("After repair:   %s\n", dirty.tuple(0).ToString().c_str());
  std::printf("Ground truth:   (%s, %s, %s)\n", dataset.clean.tuple(20).value(0).c_str(),
              dataset.clean.tuple(20).value(4).c_str(),
              dataset.clean.tuple(20).value(5).c_str());
  return 0;
}
