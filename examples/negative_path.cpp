// Negative paths via existential nodes — the extension the paper sketches
// in §II-C ("It is straightforward to extend from one negative node ... to a
// negative path"). An EXIST node binds to *some* KB instance of its type
// without a table column, so a rule can route its evidence through entities
// the relation never mentions.
//
// Scenario: a narrow table (Name, City) with no Institution column. The
// anchored phi2 of the paper cannot even be written; the existential variant
// routes through "some organization the person worksAt".

#include <cstdio>

#include "core/repair.h"
#include "core/rule_io.h"
#include "kb/knowledge_base.h"
#include "relation/relation.h"

namespace {

detective::KnowledgeBase BuildKb() {
  using detective::ClassId;
  using detective::ItemId;
  using detective::RelationId;
  detective::KbBuilder b;
  ClassId laureate = b.AddClass("laureate");
  ClassId organization = b.AddClass("organization");
  ClassId city = b.AddClass("city");
  RelationId works = b.AddRelation("worksAt");
  RelationId located = b.AddRelation("locatedIn");
  RelationId born = b.AddRelation("wasBornIn");

  ItemId haifa = b.AddEntity("Haifa", {city});
  ItemId karcag = b.AddEntity("Karcag", {city});
  ItemId paris = b.AddEntity("Paris", {city});
  ItemId warsaw = b.AddEntity("Warsaw", {city});
  ItemId technion = b.AddEntity("Israel Institute of Technology", {organization});
  ItemId pasteur = b.AddEntity("Pasteur Institute", {organization});
  b.AddEdge(technion, located, haifa);
  b.AddEdge(pasteur, located, paris);

  ItemId hershko = b.AddEntity("Avram Hershko", {laureate});
  b.AddEdge(hershko, works, technion);
  b.AddEdge(hershko, born, karcag);
  ItemId curie = b.AddEntity("Marie Curie", {laureate});
  b.AddEdge(curie, works, pasteur);
  b.AddEdge(curie, born, warsaw);
  return std::move(b).Freeze();
}

}  // namespace

int main() {
  detective::KnowledgeBase kb = BuildKb();

  // The rule: City must be where SOME institution the person works at is
  // located (existential hop 'e'); the birth city is the negative semantics.
  auto rules = detective::ParseRules(R"(
RULE city_via_some_institution
NODE a col=Name type=laureate sim="="
EXIST e type=organization
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE a worksAt e
EDGE e locatedIn p
EDGE a wasBornIn n
END
)");
  rules.status().Abort("rules");
  std::printf("Rule with an existential hop:\n%s\n",
              (*rules)[0].ToString().c_str());

  detective::Relation table{detective::Schema({"Name", "City"})};
  table.Append({"Avram Hershko", "Karcag"}).Abort("r1");  // birth city: wrong
  table.Append({"Marie Curie", "Warsaw"}).Abort("r2");    // birth city: wrong

  std::printf("Before:\n");
  for (size_t row = 0; row < table.num_tuples(); ++row) {
    std::printf("  %s\n", table.tuple(row).ToString().c_str());
  }

  detective::FastRepairer repairer(kb, table.schema(), *rules);
  repairer.Init().Abort("init");
  repairer.RepairRelation(&table);

  std::printf("After:\n");
  for (size_t row = 0; row < table.num_tuples(); ++row) {
    std::printf("  %s\n", table.tuple(row).ToString().c_str());
  }
  std::printf(
      "\nThe institution never appears in the table — the existential node\n"
      "found it in the KB and used its locatedIn edge to draw the repair.\n");
  return 0;
}
