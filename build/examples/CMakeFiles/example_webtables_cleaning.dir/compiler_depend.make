# Empty compiler generated dependencies file for example_webtables_cleaning.
# This may be replaced when dependencies are built.
