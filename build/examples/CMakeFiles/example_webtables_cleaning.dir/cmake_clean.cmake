file(REMOVE_RECURSE
  "CMakeFiles/example_webtables_cleaning.dir/webtables_cleaning.cpp.o"
  "CMakeFiles/example_webtables_cleaning.dir/webtables_cleaning.cpp.o.d"
  "example_webtables_cleaning"
  "example_webtables_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_webtables_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
