# Empty compiler generated dependencies file for example_negative_path.
# This may be replaced when dependencies are built.
