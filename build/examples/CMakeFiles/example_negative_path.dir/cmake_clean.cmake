file(REMOVE_RECURSE
  "CMakeFiles/example_negative_path.dir/negative_path.cpp.o"
  "CMakeFiles/example_negative_path.dir/negative_path.cpp.o.d"
  "example_negative_path"
  "example_negative_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_negative_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
