# Empty dependencies file for example_nobel_cleaning.
# This may be replaced when dependencies are built.
