file(REMOVE_RECURSE
  "CMakeFiles/example_nobel_cleaning.dir/nobel_cleaning.cpp.o"
  "CMakeFiles/example_nobel_cleaning.dir/nobel_cleaning.cpp.o.d"
  "example_nobel_cleaning"
  "example_nobel_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nobel_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
