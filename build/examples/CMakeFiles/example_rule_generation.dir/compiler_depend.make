# Empty compiler generated dependencies file for example_rule_generation.
# This may be replaced when dependencies are built.
