file(REMOVE_RECURSE
  "CMakeFiles/example_rule_generation.dir/rule_generation.cpp.o"
  "CMakeFiles/example_rule_generation.dir/rule_generation.cpp.o.d"
  "example_rule_generation"
  "example_rule_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rule_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
