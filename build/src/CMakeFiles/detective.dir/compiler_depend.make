# Empty compiler generated dependencies file for detective.
# This may be replaced when dependencies are built.
