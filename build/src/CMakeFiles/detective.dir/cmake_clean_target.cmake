file(REMOVE_RECURSE
  "libdetective.a"
)
