
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cfd.cc" "src/CMakeFiles/detective.dir/baselines/cfd.cc.o" "gcc" "src/CMakeFiles/detective.dir/baselines/cfd.cc.o.d"
  "/root/repo/src/baselines/fd.cc" "src/CMakeFiles/detective.dir/baselines/fd.cc.o" "gcc" "src/CMakeFiles/detective.dir/baselines/fd.cc.o.d"
  "/root/repo/src/baselines/katara.cc" "src/CMakeFiles/detective.dir/baselines/katara.cc.o" "gcc" "src/CMakeFiles/detective.dir/baselines/katara.cc.o.d"
  "/root/repo/src/baselines/llunatic.cc" "src/CMakeFiles/detective.dir/baselines/llunatic.cc.o" "gcc" "src/CMakeFiles/detective.dir/baselines/llunatic.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/detective.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/detective.dir/common/csv.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/detective.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/detective.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/detective.dir/common/random.cc.o" "gcc" "src/CMakeFiles/detective.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/detective.dir/common/status.cc.o" "gcc" "src/CMakeFiles/detective.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/detective.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/detective.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/bound_rule.cc" "src/CMakeFiles/detective.dir/core/bound_rule.cc.o" "gcc" "src/CMakeFiles/detective.dir/core/bound_rule.cc.o.d"
  "/root/repo/src/core/consistency.cc" "src/CMakeFiles/detective.dir/core/consistency.cc.o" "gcc" "src/CMakeFiles/detective.dir/core/consistency.cc.o.d"
  "/root/repo/src/core/evidence_matcher.cc" "src/CMakeFiles/detective.dir/core/evidence_matcher.cc.o" "gcc" "src/CMakeFiles/detective.dir/core/evidence_matcher.cc.o.d"
  "/root/repo/src/core/matching_graph.cc" "src/CMakeFiles/detective.dir/core/matching_graph.cc.o" "gcc" "src/CMakeFiles/detective.dir/core/matching_graph.cc.o.d"
  "/root/repo/src/core/parallel_repair.cc" "src/CMakeFiles/detective.dir/core/parallel_repair.cc.o" "gcc" "src/CMakeFiles/detective.dir/core/parallel_repair.cc.o.d"
  "/root/repo/src/core/repair.cc" "src/CMakeFiles/detective.dir/core/repair.cc.o" "gcc" "src/CMakeFiles/detective.dir/core/repair.cc.o.d"
  "/root/repo/src/core/rule.cc" "src/CMakeFiles/detective.dir/core/rule.cc.o" "gcc" "src/CMakeFiles/detective.dir/core/rule.cc.o.d"
  "/root/repo/src/core/rule_generation.cc" "src/CMakeFiles/detective.dir/core/rule_generation.cc.o" "gcc" "src/CMakeFiles/detective.dir/core/rule_generation.cc.o.d"
  "/root/repo/src/core/rule_graph.cc" "src/CMakeFiles/detective.dir/core/rule_graph.cc.o" "gcc" "src/CMakeFiles/detective.dir/core/rule_graph.cc.o.d"
  "/root/repo/src/core/rule_io.cc" "src/CMakeFiles/detective.dir/core/rule_io.cc.o" "gcc" "src/CMakeFiles/detective.dir/core/rule_io.cc.o.d"
  "/root/repo/src/datagen/error_injector.cc" "src/CMakeFiles/detective.dir/datagen/error_injector.cc.o" "gcc" "src/CMakeFiles/detective.dir/datagen/error_injector.cc.o.d"
  "/root/repo/src/datagen/names.cc" "src/CMakeFiles/detective.dir/datagen/names.cc.o" "gcc" "src/CMakeFiles/detective.dir/datagen/names.cc.o.d"
  "/root/repo/src/datagen/nobel_gen.cc" "src/CMakeFiles/detective.dir/datagen/nobel_gen.cc.o" "gcc" "src/CMakeFiles/detective.dir/datagen/nobel_gen.cc.o.d"
  "/root/repo/src/datagen/uis_gen.cc" "src/CMakeFiles/detective.dir/datagen/uis_gen.cc.o" "gcc" "src/CMakeFiles/detective.dir/datagen/uis_gen.cc.o.d"
  "/root/repo/src/datagen/webtables_gen.cc" "src/CMakeFiles/detective.dir/datagen/webtables_gen.cc.o" "gcc" "src/CMakeFiles/detective.dir/datagen/webtables_gen.cc.o.d"
  "/root/repo/src/datagen/world.cc" "src/CMakeFiles/detective.dir/datagen/world.cc.o" "gcc" "src/CMakeFiles/detective.dir/datagen/world.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/detective.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/detective.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/detective.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/detective.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/detective.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/detective.dir/eval/report.cc.o.d"
  "/root/repo/src/kb/kb_stats.cc" "src/CMakeFiles/detective.dir/kb/kb_stats.cc.o" "gcc" "src/CMakeFiles/detective.dir/kb/kb_stats.cc.o.d"
  "/root/repo/src/kb/knowledge_base.cc" "src/CMakeFiles/detective.dir/kb/knowledge_base.cc.o" "gcc" "src/CMakeFiles/detective.dir/kb/knowledge_base.cc.o.d"
  "/root/repo/src/kb/ntriples_parser.cc" "src/CMakeFiles/detective.dir/kb/ntriples_parser.cc.o" "gcc" "src/CMakeFiles/detective.dir/kb/ntriples_parser.cc.o.d"
  "/root/repo/src/relation/relation.cc" "src/CMakeFiles/detective.dir/relation/relation.cc.o" "gcc" "src/CMakeFiles/detective.dir/relation/relation.cc.o.d"
  "/root/repo/src/text/edit_distance.cc" "src/CMakeFiles/detective.dir/text/edit_distance.cc.o" "gcc" "src/CMakeFiles/detective.dir/text/edit_distance.cc.o.d"
  "/root/repo/src/text/signature_index.cc" "src/CMakeFiles/detective.dir/text/signature_index.cc.o" "gcc" "src/CMakeFiles/detective.dir/text/signature_index.cc.o.d"
  "/root/repo/src/text/similarity.cc" "src/CMakeFiles/detective.dir/text/similarity.cc.o" "gcc" "src/CMakeFiles/detective.dir/text/similarity.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/detective.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/detective.dir/text/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
