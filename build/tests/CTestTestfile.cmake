# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/data_files_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_rules_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/existential_test[1]_include.cmake")
include("/root/repo/build/tests/fuzzy_rules_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/kb_test[1]_include.cmake")
include("/root/repo/build/tests/logging_test[1]_include.cmake")
include("/root/repo/build/tests/matcher_test[1]_include.cmake")
include("/root/repo/build/tests/multi_version_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_repair_test[1]_include.cmake")
include("/root/repo/build/tests/path_discovery_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/repair_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/rule_generation_test[1]_include.cmake")
include("/root/repo/build/tests/rule_graph_property_test[1]_include.cmake")
include("/root/repo/build/tests/rule_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
