# Empty dependencies file for fuzzy_rules_test.
# This may be replaced when dependencies are built.
