file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_rules_test.dir/fuzzy_rules_test.cc.o"
  "CMakeFiles/fuzzy_rules_test.dir/fuzzy_rules_test.cc.o.d"
  "fuzzy_rules_test"
  "fuzzy_rules_test.pdb"
  "fuzzy_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
