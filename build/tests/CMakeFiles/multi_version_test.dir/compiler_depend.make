# Empty compiler generated dependencies file for multi_version_test.
# This may be replaced when dependencies are built.
