file(REMOVE_RECURSE
  "CMakeFiles/multi_version_test.dir/multi_version_test.cc.o"
  "CMakeFiles/multi_version_test.dir/multi_version_test.cc.o.d"
  "multi_version_test"
  "multi_version_test.pdb"
  "multi_version_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_version_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
