# Empty compiler generated dependencies file for rule_graph_property_test.
# This may be replaced when dependencies are built.
