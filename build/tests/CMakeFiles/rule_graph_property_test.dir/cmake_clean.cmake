file(REMOVE_RECURSE
  "CMakeFiles/rule_graph_property_test.dir/rule_graph_property_test.cc.o"
  "CMakeFiles/rule_graph_property_test.dir/rule_graph_property_test.cc.o.d"
  "rule_graph_property_test"
  "rule_graph_property_test.pdb"
  "rule_graph_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_graph_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
