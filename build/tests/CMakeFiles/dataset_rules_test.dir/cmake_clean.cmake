file(REMOVE_RECURSE
  "CMakeFiles/dataset_rules_test.dir/dataset_rules_test.cc.o"
  "CMakeFiles/dataset_rules_test.dir/dataset_rules_test.cc.o.d"
  "dataset_rules_test"
  "dataset_rules_test.pdb"
  "dataset_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
