# Empty compiler generated dependencies file for dataset_rules_test.
# This may be replaced when dependencies are built.
