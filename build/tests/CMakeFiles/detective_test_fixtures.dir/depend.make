# Empty dependencies file for detective_test_fixtures.
# This may be replaced when dependencies are built.
