file(REMOVE_RECURSE
  "libdetective_test_fixtures.a"
)
