file(REMOVE_RECURSE
  "CMakeFiles/detective_test_fixtures.dir/test_fixtures.cc.o"
  "CMakeFiles/detective_test_fixtures.dir/test_fixtures.cc.o.d"
  "libdetective_test_fixtures.a"
  "libdetective_test_fixtures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detective_test_fixtures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
