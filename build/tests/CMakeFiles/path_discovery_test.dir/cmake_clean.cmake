file(REMOVE_RECURSE
  "CMakeFiles/path_discovery_test.dir/path_discovery_test.cc.o"
  "CMakeFiles/path_discovery_test.dir/path_discovery_test.cc.o.d"
  "path_discovery_test"
  "path_discovery_test.pdb"
  "path_discovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_discovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
