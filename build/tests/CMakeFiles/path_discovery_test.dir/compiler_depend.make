# Empty compiler generated dependencies file for path_discovery_test.
# This may be replaced when dependencies are built.
