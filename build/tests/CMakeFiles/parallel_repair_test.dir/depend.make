# Empty dependencies file for parallel_repair_test.
# This may be replaced when dependencies are built.
