file(REMOVE_RECURSE
  "CMakeFiles/parallel_repair_test.dir/parallel_repair_test.cc.o"
  "CMakeFiles/parallel_repair_test.dir/parallel_repair_test.cc.o.d"
  "parallel_repair_test"
  "parallel_repair_test.pdb"
  "parallel_repair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
