# Empty dependencies file for rule_generation_test.
# This may be replaced when dependencies are built.
