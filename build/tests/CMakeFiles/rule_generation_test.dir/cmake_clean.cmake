file(REMOVE_RECURSE
  "CMakeFiles/rule_generation_test.dir/rule_generation_test.cc.o"
  "CMakeFiles/rule_generation_test.dir/rule_generation_test.cc.o.d"
  "rule_generation_test"
  "rule_generation_test.pdb"
  "rule_generation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_generation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
