# Empty compiler generated dependencies file for detective_rulegen.
# This may be replaced when dependencies are built.
