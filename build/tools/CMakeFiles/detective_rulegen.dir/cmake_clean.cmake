file(REMOVE_RECURSE
  "CMakeFiles/detective_rulegen.dir/detective_rulegen.cc.o"
  "CMakeFiles/detective_rulegen.dir/detective_rulegen.cc.o.d"
  "detective_rulegen"
  "detective_rulegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detective_rulegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
