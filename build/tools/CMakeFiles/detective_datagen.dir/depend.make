# Empty dependencies file for detective_datagen.
# This may be replaced when dependencies are built.
