file(REMOVE_RECURSE
  "CMakeFiles/detective_datagen.dir/detective_datagen.cc.o"
  "CMakeFiles/detective_datagen.dir/detective_datagen.cc.o.d"
  "detective_datagen"
  "detective_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detective_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
