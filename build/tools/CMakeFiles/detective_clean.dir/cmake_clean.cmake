file(REMOVE_RECURSE
  "CMakeFiles/detective_clean.dir/detective_clean.cc.o"
  "CMakeFiles/detective_clean.dir/detective_clean.cc.o.d"
  "detective_clean"
  "detective_clean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detective_clean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
