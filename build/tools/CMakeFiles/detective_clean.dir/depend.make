# Empty dependencies file for detective_clean.
# This may be replaced when dependencies are built.
