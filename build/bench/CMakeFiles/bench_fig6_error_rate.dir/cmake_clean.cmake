file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_error_rate.dir/bench_fig6_error_rate.cc.o"
  "CMakeFiles/bench_fig6_error_rate.dir/bench_fig6_error_rate.cc.o.d"
  "bench_fig6_error_rate"
  "bench_fig6_error_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_error_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
