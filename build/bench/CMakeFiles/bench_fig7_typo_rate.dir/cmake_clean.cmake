file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_typo_rate.dir/bench_fig7_typo_rate.cc.o"
  "CMakeFiles/bench_fig7_typo_rate.dir/bench_fig7_typo_rate.cc.o.d"
  "bench_fig7_typo_rate"
  "bench_fig7_typo_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_typo_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
