# Empty compiler generated dependencies file for bench_fig8_rules.
# This may be replaced when dependencies are built.
