file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_alignment.dir/bench_table2_alignment.cc.o"
  "CMakeFiles/bench_table2_alignment.dir/bench_table2_alignment.cc.o.d"
  "bench_table2_alignment"
  "bench_table2_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
